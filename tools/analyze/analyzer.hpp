// pqos_analyze: repo-local static analysis over the include graph and
// token stream produced by analyze/lexer.hpp.
//
// Three rule families (full catalogue in DESIGN.md §12):
//
// Layering — the subsystem DAG under src/ is *declared* here (layerGraph)
// and enforced against every quoted #include:
//   include-cycle    file-level include cycles (DFS back edge)
//   upward-include   layer X includes layer Y where Y sits above X
//   undeclared-edge  cross-layer include with no declared (even
//                    transitive) dependency path
//   unknown-layer    a src/ subdirectory absent from the declared graph
// Layering findings are NOT comment-suppressible: the only escape hatch
// is the built-in file-pair exemption table (edgeExempt), which is code
// reviewed like any other change.
//
// Determinism — hash-order and address-order must never reach results:
//   unordered-iter    any unordered_{map,set,multimap,multiset} type
//                     occurrence, plus range-for / .begin()-family
//                     iteration over values the analyzer tracked to an
//                     unordered declaration (own file or direct includes)
//   pointer-ordering  std::{map,set,multimap,multiset,less,greater}
//                     keyed/compared on a pointer type
//
// Lock discipline:
//   raw-mutex         std::mutex / lock_guard / unique_lock / ... outside
//                     util/thread_annotations.hpp. Raw std types are
//                     invisible to clang -Wthread-safety; the annotated
//                     util::Mutex / util::MutexLock wrappers are the only
//                     sanctioned lock vocabulary in src/.
//
// Determinism and lock findings are suppressible by a reviewed
//   // pqos-analyze: allow(rule[, rule]): justification
// on the finding's line. The justification is mandatory; a note with no
// rules, an unknown rule name, or no justification is itself a finding
// (malformed-allow) and suppresses nothing.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace pqos::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule, message)
  std::size_t filesScanned = 0;
  std::size_t includeEdges = 0;  // resolved in-repo edges
};

/// The declared layer DAG: layer name -> direct dependencies. An include
/// from layer X into layer Y is legal iff Y is reachable from X through
/// these edges (reflexive). `bench` and `examples` sit above everything.
[[nodiscard]] const std::map<std::string, std::vector<std::string>>&
layerGraph();

/// Layer of a repo-relative path ("" when the file is outside the
/// analyzed roots). Per-file overrides live here: src/trace/replay.* is
/// layer `trace_replay`, the verifier that legitimately sits above core.
[[nodiscard]] std::string layerOf(const std::string& path);

/// True when Y == X or Y is reachable from X in layerGraph().
[[nodiscard]] bool layerReachable(const std::string& from,
                                  const std::string& to);

/// File-pair exemptions to the layering rules, e.g. failpoint ->
/// util/error.hpp (header-only, breaks the bootstrap knot at the bottom
/// of the graph). Deliberately narrow: a layer pair is never exempted
/// wholesale.
[[nodiscard]] bool edgeExempt(const std::string& fromLayer,
                              const std::string& toPath);

/// Analyzes an in-memory tree (repo-relative path -> file contents).
/// This is the unit-test entry point: fixtures are plain string maps.
[[nodiscard]] Report analyzeFiles(
    const std::map<std::string, std::string>& files);

/// Collects the analyzed sources (src/, bench/, examples/; *.hpp *.cpp)
/// under `root`, sorted repo-relative. Throws std::runtime_error when the
/// roots are missing (wrong --root is an operator error, not a clean
/// scan).
[[nodiscard]] std::vector<std::string> collectSources(const std::string& root);

/// Reads the tree from disk and analyzes it.
[[nodiscard]] Report analyzeTree(const std::string& root);

}  // namespace pqos::analyze
