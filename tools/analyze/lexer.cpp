#include "analyze/lexer.hpp"

#include <cctype>
#include <utility>

namespace pqos::analyze {

namespace {

[[nodiscard]] bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

class Lexer {
 public:
  Lexer(std::string path, std::string_view text) : text_(text) {
    out_.path = std::move(path);
  }

  [[nodiscard]] LexedFile run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++pos_;
        ++line_;
        atLineStart_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;  // horizontal whitespace keeps line-start status
        continue;
      }
      if (atLineStart_ && c == '#') {
        lexPreprocessor();
        continue;
      }
      atLineStart_ = false;
      const char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
      if (c == '/' && next == '/') {
        lexLineComment();
      } else if (c == '/' && next == '*') {
        lexBlockComment();
      } else if (c == '"') {
        lexString();
        emitLiteral(Token::Kind::kString);
      } else if (c == '\'') {
        lexCharLiteral();
        emitLiteral(Token::Kind::kChar);
      } else if (isIdentStart(c)) {
        lexIdentOrPrefixedString();
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        lexNumber();
      } else {
        lexPunct();
      }
    }
    return std::move(out_);
  }

 private:
  void emit(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  // Literal contents never matter to the rules; a placeholder token keeps
  // positional patterns (e.g. `ident . begin (`) intact without storing
  // potentially large string bodies.
  void emitLiteral(Token::Kind kind) { emit(kind, "", tokenLine_); }

  void lexLineComment() {
    const int startLine = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    parseAllowNote(text_.substr(start, pos_ - start), startLine);
  }

  void lexBlockComment() {
    const int startLine = line_;
    const std::size_t start = pos_;
    pos_ += 2;  // "/*"
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\n') ++line_;
      if (text_[pos_] == '*' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '/') {
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    // Allow notes are recognized in block comments too, anchored to the
    // line the comment opened on.
    parseAllowNote(text_.substr(start, pos_ - start), startLine);
  }

  // Consumes one "..." literal (opening quote at pos_). Escapes are
  // honored; an unescaped newline ends the literal (ill-formed code, but
  // the lexer must not derail on it).
  void lexString() {
    tokenLine_ = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return;
      }
      if (c == '\n') return;  // unterminated; newline handled by main loop
      ++pos_;
    }
  }

  // Consumes R"delim( ... )delim" with pos_ at the opening quote.
  void lexRawString() {
    tokenLine_ = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != '\n') {
      delim += text_[pos_];
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != '(') return;  // ill-formed
    ++pos_;
    const std::string closer = ")" + delim + "\"";
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (text_[pos_] == ')' &&
          text_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        return;
      }
      ++pos_;
    }
  }

  void lexCharLiteral() {
    tokenLine_ = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        return;
      }
      if (c == '\n') return;
      ++pos_;
    }
  }

  void lexIdentOrPrefixedString() {
    const int startLine = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && isIdentChar(text_[pos_])) ++pos_;
    const std::string_view ident = text_.substr(start, pos_ - start);
    if (pos_ < text_.size() && text_[pos_] == '"') {
      // Encoding / raw-string prefixes glue an identifier to the quote.
      const bool raw = ident == "R" || ident == "u8R" || ident == "uR" ||
                       ident == "UR" || ident == "LR";
      const bool encoded =
          ident == "u8" || ident == "u" || ident == "U" || ident == "L";
      if (raw) {
        lexRawString();
        emitLiteral(Token::Kind::kString);
        return;
      }
      if (encoded) {
        lexString();
        emitLiteral(Token::Kind::kString);
        return;
      }
    }
    emit(Token::Kind::kIdent, std::string(ident), startLine);
  }

  void lexNumber() {
    const int startLine = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (isIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(Token::Kind::kNumber, std::string(text_.substr(start, pos_ - start)),
         startLine);
  }

  void lexPunct() {
    // `::` is the one multi-character punctuator the rules care about:
    // fusing it lets patterns distinguish `std::mutex` from a label or a
    // ternary, and makes a lone `:` in a for-header a reliable range-for
    // signal.
    if (text_[pos_] == ':' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] == ':') {
      emit(Token::Kind::kPunct, "::", line_);
      pos_ += 2;
      return;
    }
    emit(Token::Kind::kPunct, std::string(1, text_[pos_]), line_);
    ++pos_;
  }

  // Consumes a whole preprocessor logical line (backslash continuations
  // included) and extracts #include directives and trailing allow notes.
  // Directive tokens are intentionally NOT added to the token stream.
  void lexPreprocessor() {
    const int startLine = line_;
    std::string raw;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        raw += ' ';
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;  // main loop owns the newline
      raw += c;
      ++pos_;
    }
    parsePreprocessorLine(raw, startLine);
  }

  void parsePreprocessorLine(std::string_view raw, int startLine) {
    std::size_t i = 0;
    auto skipWs = [&] {
      while (i < raw.size() &&
             std::isspace(static_cast<unsigned char>(raw[i])) != 0) {
        ++i;
      }
    };
    if (i < raw.size() && raw[i] == '#') ++i;
    skipWs();
    const std::size_t wordStart = i;
    while (i < raw.size() && isIdentChar(raw[i])) ++i;
    const std::string_view directive = raw.substr(wordStart, i - wordStart);
    if (directive == "include") {
      skipWs();
      if (i < raw.size() && (raw[i] == '"' || raw[i] == '<')) {
        const char open = raw[i];
        const char close = open == '"' ? '"' : '>';
        const std::size_t targetStart = ++i;
        const std::size_t end = raw.find(close, targetStart);
        if (end != std::string_view::npos) {
          out_.includes.push_back(IncludeDirective{
              std::string(raw.substr(targetStart, end - targetStart)),
              startLine, open == '<'});
          i = end + 1;
        }
      }
    }
    // A trailing //-comment on the directive may carry an allow note
    // (e.g. suppressing a layering exemption's documentation line).
    const std::size_t comment = raw.find("//", i);
    if (comment != std::string_view::npos) {
      parseAllowNote(raw.substr(comment), startLine);
    }
  }

  // Grammar: "pqos-analyze:" ws "allow(" rule ("," rule)* ")" [":" just].
  // Anything tagged `pqos-analyze:` that fails the grammar is still
  // recorded (with empty rules / justification) so the analyzer can
  // report it as malformed instead of silently ignoring a typo.
  void parseAllowNote(std::string_view comment, int startLine) {
    static constexpr std::string_view kTag = "pqos-analyze:";
    const std::size_t tag = comment.find(kTag);
    if (tag == std::string_view::npos) return;
    AllowNote note;
    note.line = startLine;
    std::size_t i = tag + kTag.size();
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])) != 0) {
      ++i;
    }
    static constexpr std::string_view kAllow = "allow(";
    if (comment.compare(i, kAllow.size(), kAllow) == 0) {
      i += kAllow.size();
      const std::size_t end = comment.find(')', i);
      if (end != std::string_view::npos) {
        std::string_view rules = comment.substr(i, end - i);
        while (!rules.empty()) {
          const std::size_t comma = rules.find(',');
          const std::string_view rule = trim(rules.substr(0, comma));
          if (!rule.empty()) note.rules.emplace_back(rule);
          if (comma == std::string_view::npos) break;
          rules.remove_prefix(comma + 1);
        }
        i = end + 1;
        while (i < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[i])) != 0) {
          ++i;
        }
        if (i < comment.size() && comment[i] == ':') {
          note.justification = std::string(trim(comment.substr(i + 1)));
        }
      }
    }
    out_.allows.push_back(std::move(note));
  }

  std::string_view text_;
  LexedFile out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int tokenLine_ = 1;  // start line of the literal being consumed
  bool atLineStart_ = true;
};

}  // namespace

LexedFile lexFile(std::string path, std::string_view text) {
  return Lexer(std::move(path), text).run();
}

}  // namespace pqos::analyze
