#include "analyze/analyzer.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace pqos::analyze {

namespace fs = std::filesystem;

namespace {

// Rules a `pqos-analyze: allow(...)` note may suppress. Layering rules
// are intentionally absent — see analyzer.hpp.
const std::set<std::string>& suppressibleRules() {
  static const std::set<std::string> kRules = {
      "unordered-iter", "pointer-ordering", "raw-mutex"};
  return kRules;
}

struct AnalyzedFile {
  LexedFile lex;
  // Resolved in-repo include edges: (target path, directive line).
  std::vector<std::pair<std::string, int>> edges;
  // Names this file declares with an unordered container type.
  std::set<std::string> unorderedNames;
};

using Tree = std::map<std::string, AnalyzedFile>;

// ---------------------------------------------------------------------------
// Layer graph

const std::vector<std::string>& allSrcLayers() {
  static const std::vector<std::string> kLayers = {
      "failpoint", "util",    "metrics", "trace",  "cluster", "workload",
      "failure",   "sim",     "predict", "health", "ckpt",    "sched",
      "core",      "trace_replay", "runner", "fabric"};
  return kLayers;
}

}  // namespace

const std::map<std::string, std::vector<std::string>>& layerGraph() {
  // Direct dependencies only; legality is the transitive closure. The
  // graph mirrors the link graph in src/CMakeLists.txt — an include edge
  // the linker would reject should fail here first, with a file:line.
  static const std::map<std::string, std::vector<std::string>> kGraph = {
      // failpoint is the bottom: fault-injection sites must be available
      // everywhere, including inside util itself. Its two header-only
      // util includes are file-pair exemptions, not edges.
      {"failpoint", {}},
      {"util", {"failpoint"}},
      {"metrics", {"util"}},
      {"trace", {"util", "metrics"}},
      {"cluster", {"util"}},
      {"workload", {"util", "metrics"}},
      {"failure", {"util"}},
      {"sim", {"util", "metrics", "trace"}},
      {"predict", {"util", "metrics", "failure"}},
      {"health", {"util", "failure", "predict"}},
      {"ckpt", {"util"}},
      {"sched", {"util", "metrics", "cluster", "predict"}},
      // core is the aggregation layer: the simulator wires every
      // substrate together, so its direct-dep list is deliberately wide.
      {"core",
       {"sim", "sched", "ckpt", "predict", "failure", "workload", "trace",
        "cluster", "util", "metrics"}},
      // trace/replay.* is the replay *verifier*: it re-runs experiments
      // through core, so it sits above core despite living in src/trace/.
      {"trace_replay", {"trace", "core"}},
      {"runner", {"core"}},
      {"fabric", {"runner"}},
      {"bench", allSrcLayers()},
      {"examples", allSrcLayers()},
  };
  return kGraph;
}

std::string layerOf(const std::string& path) {
  if (path == "src/trace/replay.hpp" || path == "src/trace/replay.cpp") {
    return "trace_replay";
  }
  if (path.rfind("src/", 0) == 0) {
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return "";
    return path.substr(4, slash - 4);
  }
  if (path.rfind("bench/", 0) == 0) return "bench";
  if (path.rfind("examples/", 0) == 0) return "examples";
  return "";
}

bool layerReachable(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const auto& graph = layerGraph();
  std::set<std::string> seen{from};
  std::deque<std::string> queue{from};
  while (!queue.empty()) {
    const std::string layer = queue.front();
    queue.pop_front();
    const auto it = graph.find(layer);
    if (it == graph.end()) continue;
    for (const std::string& dep : it->second) {
      if (dep == to) return true;
      if (seen.insert(dep).second) queue.push_back(dep);
    }
  }
  return false;
}

bool edgeExempt(const std::string& fromLayer, const std::string& toPath) {
  // failpoint -> util: error.hpp (require/ConfigError for site validation)
  // and rng.hpp (deterministic per-site RNG) are header-only with no link
  // dependency; inlining copies was judged worse than a reviewed knot.
  static const std::set<std::pair<std::string, std::string>> kExempt = {
      {"failpoint", "src/util/error.hpp"},
      {"failpoint", "src/util/rng.hpp"},
  };
  return kExempt.count({fromLayer, toPath}) != 0;
}

namespace {

// ---------------------------------------------------------------------------
// Shared helpers

[[nodiscard]] std::string dirName(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Quoted-include resolution: src/-anchored first (the tree's include
// style), then includer-relative (bench/harness.hpp). Unresolved quoted
// includes are generated or external headers — out of scope.
[[nodiscard]] std::string resolveInclude(const std::string& includer,
                                         const std::string& target,
                                         const Tree& tree) {
  const std::string srcAnchored = "src/" + target;
  if (tree.count(srcAnchored) != 0) return srcAnchored;
  const std::string dir = dirName(includer);
  const std::string relative = dir.empty() ? target : dir + "/" + target;
  if (tree.count(relative) != 0) return relative;
  return "";
}

[[nodiscard]] bool isSrcFile(const std::string& path) {
  return path.rfind("src/", 0) == 0;
}

// True when a well-formed allow note for `rule` covers `line`.
[[nodiscard]] bool allowedAt(const LexedFile& lex, int line,
                             const std::string& rule) {
  for (const AllowNote& note : lex.allows) {
    if (note.line != line) continue;
    if (note.justification.empty()) continue;  // malformed: no suppression
    if (std::find(note.rules.begin(), note.rules.end(), rule) !=
        note.rules.end()) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool isPunct(const Token& tok, std::string_view text) {
  return tok.kind == Token::Kind::kPunct && tok.text == text;
}

// True when tokens[i] is `name` qualified as std::name.
[[nodiscard]] bool stdQualified(const std::vector<Token>& tokens,
                                std::size_t i) {
  return i >= 2 && isPunct(tokens[i - 1], "::") &&
         tokens[i - 2].kind == Token::Kind::kIdent &&
         tokens[i - 2].text == "std";
}

void addFinding(std::vector<Finding>& findings, const std::string& file,
                int line, std::string rule, std::string message) {
  findings.push_back(
      Finding{file, line, std::move(rule), std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: malformed-allow

void checkAllowNotes(const AnalyzedFile& file, const std::string& path,
                     std::vector<Finding>& findings) {
  for (const AllowNote& note : file.lex.allows) {
    if (note.rules.empty()) {
      addFinding(findings, path, note.line, "malformed-allow",
                 "pqos-analyze note without allow(rule, ...): suppression "
                 "must name the rules it covers");
      continue;
    }
    for (const std::string& rule : note.rules) {
      if (suppressibleRules().count(rule) == 0) {
        addFinding(findings, path, note.line, "malformed-allow",
                   "allow() names unknown or non-suppressible rule '" + rule +
                       "'");
      }
    }
    if (note.justification.empty()) {
      addFinding(findings, path, note.line, "malformed-allow",
                 "allow(" + note.rules.front() +
                     ") without a justification: write `allow(rule): why "
                     "this is safe`");
    }
  }
}

// ---------------------------------------------------------------------------
// Layering rules

void checkLayerEdges(const Tree& tree, std::vector<Finding>& findings) {
  const auto& graph = layerGraph();
  for (const auto& [path, file] : tree) {
    const std::string fromLayer = layerOf(path);
    if (fromLayer.empty()) continue;
    if (graph.count(fromLayer) == 0) {
      addFinding(findings, path, 1, "unknown-layer",
                 "directory '" + fromLayer +
                     "' is not declared in the layer graph (tools/analyze/"
                     "analyzer.cpp); declare its dependencies first");
      continue;
    }
    for (const auto& [target, line] : file.edges) {
      const std::string toLayer = layerOf(target);
      if (toLayer == fromLayer) continue;
      if (graph.count(toLayer) == 0) {
        addFinding(findings, path, line, "unknown-layer",
                   "includes '" + target + "' in undeclared layer '" +
                       toLayer + "'");
        continue;
      }
      if (edgeExempt(fromLayer, target)) continue;
      if (layerReachable(fromLayer, toLayer)) continue;
      if (layerReachable(toLayer, fromLayer)) {
        addFinding(findings, path, line, "upward-include",
                   "includes '" + target + "': layer '" + toLayer +
                       "' sits above '" + fromLayer +
                       "' in the layer graph");
      } else {
        std::string deps;
        for (const std::string& dep : graph.at(fromLayer)) {
          if (!deps.empty()) deps += ", ";
          deps += dep;
        }
        addFinding(findings, path, line, "undeclared-edge",
                   "includes '" + target + "': layer '" + fromLayer +
                       "' declares no dependency on '" + toLayer +
                       "' (direct deps: " +
                       (deps.empty() ? std::string("none") : deps) + ")");
      }
    }
  }
}

// DFS back-edge detection over the file include graph. Deterministic:
// files visit in sorted order, edges in directive order, and each cycle
// reports exactly once (at the back edge that closes it).
void checkIncludeCycles(const Tree& tree, std::vector<Finding>& findings) {
  enum class Color { kWhite, kGrey, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [path, file] : tree) color[path] = Color::kWhite;
  std::vector<std::string> stack;

  // Iterative DFS with an explicit frame stack: include chains are short,
  // but a cycle fixture must not be able to overflow the C++ stack.
  struct Frame {
    const std::string* path;
    std::size_t next = 0;
  };
  for (const auto& [root, rootFile] : tree) {
    (void)rootFile;
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{&root});
    color[root] = Color::kGrey;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const AnalyzedFile& file = tree.at(*frame.path);
      if (frame.next >= file.edges.size()) {
        color[*frame.path] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const auto& [target, line] = file.edges[frame.next];
      ++frame.next;
      const auto state = color.find(target);
      if (state == color.end()) continue;  // edge into an unscanned file
      if (state->second == Color::kGrey) {
        const auto begin =
            std::find(stack.begin(), stack.end(), target);
        std::string chain;
        for (auto it = begin; it != stack.end(); ++it) {
          chain += *it + " -> ";
        }
        chain += target;
        addFinding(findings, *frame.path, line, "include-cycle",
                   "include cycle: " + chain);
      } else if (state->second == Color::kWhite) {
        state->second = Color::kGrey;
        stack.push_back(target);
        frames.push_back(Frame{&tree.find(target)->first});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism rules

const std::set<std::string>& unorderedTypes() {
  static const std::set<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

// Collects names declared with an unordered container type: after the
// type's template argument list, the first identifier (skipping cv/ref
// punctuation) is taken as the declared name. Parameters count too — an
// unordered_map parameter iterated in a free function is just as
// nondeterministic as a member.
void collectUnorderedNames(AnalyzedFile& file) {
  const std::vector<Token>& tokens = file.lex.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        unorderedTypes().count(tokens[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < tokens.size() && isPunct(tokens[j], "<")) {
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (isPunct(tokens[j], "<")) ++depth;
        if (isPunct(tokens[j], ">")) --depth;
        ++j;
      }
    }
    while (j < tokens.size() &&
           (isPunct(tokens[j], "&") || isPunct(tokens[j], "*") ||
            (tokens[j].kind == Token::Kind::kIdent &&
             tokens[j].text == "const"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent) {
      file.unorderedNames.insert(tokens[j].text);
    }
  }
}

void checkUnorderedIter(const Tree& tree, const std::string& path,
                        std::vector<Finding>& findings) {
  const AnalyzedFile& file = tree.at(path);
  const std::vector<Token>& tokens = file.lex.tokens;

  // Tracked names: declared here or in a directly included repo header —
  // the member-declared-in-.hpp, iterated-in-.cpp case.
  std::set<std::string> tracked = file.unorderedNames;
  for (const auto& [target, line] : file.edges) {
    (void)line;
    const auto it = tree.find(target);
    if (it != tree.end()) {
      tracked.insert(it->second.unorderedNames.begin(),
                     it->second.unorderedNames.end());
    }
  }

  // (1) Type occurrences: every unordered container spelling needs a
  // justified allow. The declaration is where the reviewer decides the
  // container can never leak hash order into a result.
  for (const Token& tok : tokens) {
    if (tok.kind != Token::Kind::kIdent ||
        unorderedTypes().count(tok.text) == 0) {
      continue;
    }
    if (allowedAt(file.lex, tok.line, "unordered-iter")) continue;
    addFinding(findings, path, tok.line, "unordered-iter",
               "'" + tok.text +
                   "' in a result-affecting layer: hash iteration order is "
                   "nondeterministic; use an ordered container or add "
                   "`// pqos-analyze: allow(unordered-iter): <why no "
                   "iteration order can reach a result>`");
  }

  // (2) Range-for over a tracked unordered name.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent || tokens[i].text != "for" ||
        !isPunct(tokens[i + 1], "(")) {
      continue;
    }
    int depth = 1;
    std::size_t j = i + 2;
    std::size_t colon = 0;
    while (j < tokens.size() && depth > 0) {
      if (isPunct(tokens[j], "(")) ++depth;
      if (isPunct(tokens[j], ")")) --depth;
      if (depth == 1 && isPunct(tokens[j], ";")) break;  // classic for
      if (depth == 1 && isPunct(tokens[j], ":")) {
        colon = j;
        break;
      }
      ++j;
    }
    if (colon == 0) continue;
    depth = 1;
    for (j = colon + 1; j < tokens.size() && depth > 0; ++j) {
      if (isPunct(tokens[j], "(")) ++depth;
      if (isPunct(tokens[j], ")")) {
        --depth;
        continue;
      }
      if (tokens[j].kind == Token::Kind::kIdent &&
          tracked.count(tokens[j].text) != 0) {
        if (!allowedAt(file.lex, tokens[j].line, "unordered-iter") &&
            !allowedAt(file.lex, tokens[i].line, "unordered-iter")) {
          addFinding(findings, path, tokens[j].line, "unordered-iter",
                     "range-for over '" + tokens[j].text +
                         "', declared as an unordered container: iteration "
                         "order is hash-order");
        }
      }
    }
  }

  // (3) Explicit iterator walks: tracked.begin() and friends.
  static const std::set<std::string> kBeginFamily = {"begin", "cbegin",
                                                     "rbegin", "crbegin"};
  for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        kBeginFamily.count(tokens[i].text) == 0 ||
        !isPunct(tokens[i + 1], "(")) {
      continue;
    }
    const bool memberAccess =
        isPunct(tokens[i - 1], ".") ||
        (isPunct(tokens[i - 1], ">") && isPunct(tokens[i - 2], "-"));
    if (!memberAccess) continue;
    const std::size_t objIndex = isPunct(tokens[i - 1], ".") ? i - 2 : i - 3;
    if (objIndex >= tokens.size()) continue;  // wrapped (tiny i); skip
    const Token& obj = tokens[objIndex];
    if (obj.kind != Token::Kind::kIdent || tracked.count(obj.text) == 0) {
      continue;
    }
    if (allowedAt(file.lex, tokens[i].line, "unordered-iter")) continue;
    addFinding(findings, path, tokens[i].line, "unordered-iter",
               "iterator walk over '" + obj.text +
                   "' (." + tokens[i].text +
                   "()), declared as an unordered container");
  }
}

void checkPointerOrdering(const AnalyzedFile& file, const std::string& path,
                          std::vector<Finding>& findings) {
  static const std::set<std::string> kOrderedTemplates = {
      "map", "set", "multimap", "multiset", "less", "greater"};
  const std::vector<Token>& tokens = file.lex.tokens;
  for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        kOrderedTemplates.count(tokens[i].text) == 0 ||
        !stdQualified(tokens, i) || !isPunct(tokens[i + 1], "<")) {
      continue;
    }
    // First template argument: tokens until `,` or the closing `>` at
    // this nesting level. A trailing `*` makes the key a raw pointer —
    // address order, i.e. allocator order, i.e. nondeterminism.
    int depth = 1;
    const Token* last = nullptr;
    for (std::size_t j = i + 2; j < tokens.size(); ++j) {
      if (isPunct(tokens[j], "<")) ++depth;
      if (isPunct(tokens[j], ">")) {
        --depth;
        if (depth == 0) break;
      }
      if (depth == 1 && isPunct(tokens[j], ",")) break;
      last = &tokens[j];
    }
    if (last == nullptr || !isPunct(*last, "*")) continue;
    if (allowedAt(file.lex, tokens[i].line, "pointer-ordering")) continue;
    addFinding(findings, path, tokens[i].line, "pointer-ordering",
               "std::" + tokens[i].text +
                   " ordered on a pointer type: pointer comparison order "
                   "is allocation order, which is not reproducible");
  }
}

void checkRawMutex(const AnalyzedFile& file, const std::string& path,
                   std::vector<Finding>& findings) {
  if (path == "src/util/thread_annotations.hpp") return;  // the wrapper
  static const std::set<std::string> kRawLockTypes = {
      "mutex",        "timed_mutex",        "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "lock_guard",   "unique_lock",        "scoped_lock",
      "condition_variable"};
  const std::vector<Token>& tokens = file.lex.tokens;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        kRawLockTypes.count(tokens[i].text) == 0 ||
        !stdQualified(tokens, i)) {
      continue;
    }
    if (allowedAt(file.lex, tokens[i].line, "raw-mutex")) continue;
    addFinding(findings, path, tokens[i].line, "raw-mutex",
               "std::" + tokens[i].text +
                   " is invisible to clang -Wthread-safety; use the "
                   "annotated util::Mutex / util::MutexLock "
                   "(util/thread_annotations.hpp). std::condition_variable_"
                   "any works with util::Mutex directly");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver

Report analyzeFiles(const std::map<std::string, std::string>& files) {
  Tree tree;
  for (const auto& [path, contents] : files) {
    AnalyzedFile file;
    file.lex = lexFile(path, contents);
    tree.emplace(path, std::move(file));
  }
  Report report;
  report.filesScanned = tree.size();
  for (auto& [path, file] : tree) {
    for (const IncludeDirective& inc : file.lex.includes) {
      if (inc.angled) continue;  // system headers are out of scope
      const std::string target = resolveInclude(path, inc.target, tree);
      if (target.empty()) continue;
      file.edges.emplace_back(target, inc.line);
      ++report.includeEdges;
    }
    collectUnorderedNames(file);
  }

  checkLayerEdges(tree, report.findings);
  checkIncludeCycles(tree, report.findings);
  for (const auto& [path, file] : tree) {
    checkAllowNotes(file, path, report.findings);
    if (!isSrcFile(path)) continue;  // determinism rules: src/ only
    checkUnorderedIter(tree, path, report.findings);
    checkPointerOrdering(file, path, report.findings);
    checkRawMutex(file, path, report.findings);
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

std::vector<std::string> collectSources(const std::string& root) {
  std::vector<std::string> sources;
  const fs::path base(root);
  for (const char* top : {"src", "bench", "examples"}) {
    const fs::path dir = base / top;
    if (!fs::is_directory(dir)) {
      throw std::runtime_error("pqos_analyze: '" + dir.string() +
                               "' is not a directory (is --root the repo "
                               "root?)");
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      sources.push_back(
          entry.path().lexically_relative(base).generic_string());
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

Report analyzeTree(const std::string& root) {
  std::map<std::string, std::string> files;
  const fs::path base(root);
  for (const std::string& rel : collectSources(root)) {
    std::ifstream in(base / rel, std::ios::binary);
    if (!in.is_open()) {
      throw std::runtime_error("pqos_analyze: cannot read " + rel);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.emplace(rel, buffer.str());
  }
  return analyzeFiles(files);
}

}  // namespace pqos::analyze
