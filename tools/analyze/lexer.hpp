// A genuine (if small) C++ lexer for pqos_analyze.
//
// The analyzer's rules need to see *code*, not text: an `unordered_map`
// inside a comment, a string literal, or a raw string must never fire a
// finding, and an `#include` split across a backslash continuation must
// still be seen. Regexes cannot do that reliably, so this lexer walks the
// bytes once and produces:
//
//   - a token stream (identifiers, numbers, string/char literals,
//     punctuation) with line numbers; `::` is fused into one token so the
//     rules can match qualified names (`std :: mutex`) positionally,
//   - every #include directive (quoted vs angled, logical line number,
//     continuation-aware),
//   - every `// pqos-analyze: allow(rule, ...): justification` note, the
//     suppression mechanism the analyzer honors (see analyzer.hpp for
//     which rules are suppressible and how malformed notes are handled).
//
// Handled literal forms: //-comments, /*...*/ comments (newline-counting),
// "..." with escapes, '...' with escapes, encoding prefixes (u8 u U L),
// and raw strings R"delim(...)delim". Preprocessor logical lines are
// consumed whole and do NOT appear in the token stream: a `#define`d
// `unordered_map` is macro plumbing, not an iteration site, and flagging
// it would force meaningless allows.
//
// This is a lexer, not a parser: the analyzer's rules are token-pattern
// based by design (see DESIGN.md §12 for the soundness trade-off).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pqos::analyze {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

/// One #include directive. `target` is the path between the delimiters;
/// `line` is the line the directive started on (continuations collapse).
struct IncludeDirective {
  std::string target;
  int line = 0;
  bool angled = false;
};

/// One `pqos-analyze:` comment note. A well-formed note is
/// `allow(rule[, rule...]): justification` — empty `rules` or an empty
/// `justification` mean the note is malformed (the analyzer reports it
/// and the note suppresses nothing).
struct AllowNote {
  std::vector<std::string> rules;
  std::string justification;
  int line = 0;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<AllowNote> allows;
};

/// Lexes one translation unit. Never throws on malformed input: an
/// unterminated literal or comment simply ends the file — the compiler,
/// not the analyzer, owns that diagnostic.
[[nodiscard]] LexedFile lexFile(std::string path, std::string_view text);

}  // namespace pqos::analyze
