#!/usr/bin/env python3
"""Aggregates gcov line coverage for the pqos tree.

Runs `gcov --json-format --stdout` over every .gcda counter file left
behind by an instrumented test run (scripts/check.sh --coverage), merges
hit counts for src/ lines across translation units (a header line counts
as covered if ANY includer executed it), and prints a per-subsystem
summary table.

The threshold is a warning, not a gate: a dip below --warn-below prints a
WARNING but still exits 0, so the coverage stage only fails on tooling
errors (no counters found, gcov missing). See DESIGN.md section 7.

Usage:
    scripts/coverage_summary.py --build build-coverage [--source DIR]
                                [--warn-below PCT] [--gcov TOOL]

Exit status: 0 summary printed (warning or not), 2 tooling error.
"""

from __future__ import annotations

import argparse
import collections
import json
import subprocess
import sys
from pathlib import Path

CHUNK = 50  # .gcda files per gcov invocation (argv-size safety)


def gcov_documents(gcov: str, build: Path, gcda_files: list[Path]):
    """Yields parsed gcov JSON documents, one per data file."""
    for start in range(0, len(gcda_files), CHUNK):
        chunk = [str(p) for p in gcda_files[start : start + CHUNK]]
        result = subprocess.run(
            [gcov, "--json-format", "--stdout", *chunk],
            capture_output=True,
            text=True,
            cwd=build,
        )
        if result.returncode != 0:
            print(
                f"coverage: gcov failed on a chunk: {result.stderr.strip()}",
                file=sys.stderr,
            )
            continue
        # --stdout emits one JSON document per input file, one per line.
        for line in result.stdout.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as err:
                print(f"coverage: unparsable gcov output: {err}",
                      file=sys.stderr)


def merge_coverage(docs, source: Path) -> dict[str, dict[int, int]]:
    """Returns {repo-relative src path: {line: max hit count}}."""
    hits: dict[str, dict[int, int]] = collections.defaultdict(dict)
    for doc in docs:
        cwd = Path(doc.get("current_working_directory", "."))
        for entry in doc.get("files", []):
            path = Path(entry.get("file", ""))
            if not path.is_absolute():
                path = cwd / path
            try:
                rel = path.resolve().relative_to(source).as_posix()
            except ValueError:
                continue  # system/test/third-party file
            if not rel.startswith("src/"):
                continue
            lines = hits[rel]
            for record in entry.get("lines", []):
                number = record.get("line_number")
                count = record.get("count", 0)
                if number is None:
                    continue
                lines[number] = max(lines.get(number, 0), count)
    return hits


def summarize(hits: dict[str, dict[int, int]]):
    """Returns sorted rows of (subsystem, files, lines, covered)."""
    groups = collections.defaultdict(lambda: [0, 0, 0])  # files, lines, hit
    for rel, lines in hits.items():
        parts = rel.split("/")
        subsystem = "/".join(parts[:2]) if len(parts) > 2 else parts[0]
        group = groups[subsystem]
        group[0] += 1
        group[1] += len(lines)
        group[2] += sum(1 for count in lines.values() if count > 0)
    return sorted(groups.items())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build", type=Path, required=True,
                        help="instrumented build tree containing .gcda files")
    parser.add_argument("--source", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this checkout)")
    parser.add_argument("--warn-below", type=float, default=0.0,
                        help="warn when total src/ line coverage is below "
                             "this percentage (default: no warning)")
    parser.add_argument("--gcov", default="gcov",
                        help="gcov executable (default: gcov)")
    args = parser.parse_args()

    build = args.build.resolve()
    source = args.source.resolve()
    if not build.is_dir():
        print(f"coverage: no build tree at {build}", file=sys.stderr)
        return 2
    gcda_files = sorted(build.rglob("*.gcda"))
    if not gcda_files:
        print(
            f"coverage: no .gcda counters under {build} — build with "
            "--coverage and run the tests first",
            file=sys.stderr,
        )
        return 2

    hits = merge_coverage(gcov_documents(args.gcov, build, gcda_files), source)
    if not hits:
        print("coverage: gcov produced no data for src/", file=sys.stderr)
        return 2

    rows = summarize(hits)
    total_lines = sum(lines for _s, (_f, lines, _h) in rows)
    total_hit = sum(hit for _s, (_f, _l, hit) in rows)

    width = max(len(subsystem) for subsystem, _g in rows)
    width = max(width, len("subsystem"), len("total"))
    header = f"{'subsystem':<{width}}  {'files':>5}  {'lines':>6}  " \
             f"{'covered':>7}  {'%':>6}"
    print(header)
    print("-" * len(header))
    for subsystem, (files, lines, hit) in rows:
        pct = 100.0 * hit / lines if lines else 0.0
        print(f"{subsystem:<{width}}  {files:>5}  {lines:>6}  "
              f"{hit:>7}  {pct:>5.1f}%")
    print("-" * len(header))
    total_files = sum(files for _s, (files, _l, _h) in rows)
    total_pct = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"{'total':<{width}}  {total_files:>5}  {total_lines:>6}  "
          f"{total_hit:>7}  {total_pct:>5.1f}%")

    if args.warn_below > 0 and total_pct < args.warn_below:
        print(
            f"WARNING: total src/ line coverage {total_pct:.1f}% is below "
            f"the {args.warn_below:.0f}% target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
