#!/usr/bin/env python3
"""pqos-lint: domain-specific correctness lint for the pqos tree.

Generic analyzers cannot know this repo's invariants; this tool enforces
the ones that keep the simulator's results trustworthy:

  no-raw-random   All randomness flows through util/rng (seeded,
                  deterministic streams). rand()/srand()/std::random_device
                  anywhere else silently breaks replica reproducibility.
  no-console-io   Library code never prints: diagnostics go through the
                  logger (util/log.hpp), results through runner sinks.
                  Exempt: the logger itself, CLI usage printing, and the
                  runner's result sinks (the declared output layer).
  no-float        Simulation time/work arithmetic is double-only; a single
                  float narrows a multi-year clock below second precision.
  no-wall-clock   The deterministic core (everything in src/ except the
                  metrics layer) must not touch <chrono> at all: no clock
                  reads, no ad-hoc durations. Simulated time comes from
                  sim::Engine::now() alone; the sanctioned duration uses
                  (failpoint delays, runner backoff/watchdog sleeps)
                  carry reviewed inline allows.
  no-raw-clock    Wall-clock *reads* — steady/system/high_resolution
                  clock, time(), clock(), gettimeofday() — are confined
                  to src/metrics/, the tree's single monotonic clock
                  source (metrics::nowSeconds). Everything else, bench
                  harnesses included, times itself through the metrics
                  layer so on/off comparisons measure the same clock.
  no-raw-file-io  Whole-file artifacts (results, traces, workloads) are
                  written through util::atomic_write (tmp + fsync +
                  rename), so a crash never leaves a torn file that parses
                  as a complete result. Only atomic_write itself and the
                  legacy report/table writers hold raw ofstream handles;
                  runner/journal.cpp's append-only O_APPEND fd is the one
                  sanctioned non-atomic writer (fsync per record).
  pragma-once     Every header in src/ carries #pragma once. (Standalone
                  compilation is enforced by the pqos_header_selfcontain
                  build target, which this tool cross-checks exists.)
  failpoint-site  Every PQOS_FAILPOINT("name") literal in the tree must
                  name an entry in the failpoint.cpp catalogue, and every
                  catalogued site must be evaluated somewhere — a typo on
                  either side would silently disarm chaos coverage.
  metric-site     The same two-way check for PQOS_METRIC_* hooks and
                  metrics::idOf("name") lookups against the metrics.cpp
                  catalogue: an uncatalogued name throws LogicError at
                  runtime, a catalogued-but-unused metric reports zeros
                  that read as "this path never runs".

Suppress a deliberate exception by appending
    // pqos-lint: allow(<rule>)
to the offending line; suppressions should be rare and reviewed.

Usage:
    scripts/pqos_lint.py [--root DIR] [--quiet]
    scripts/pqos_lint.py --self-test

Exit status: 0 clean, 1 findings, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- Rule table -----------------------------------------------------------

# (rule, [patterns], scope predicate on repo-relative posix path, message)
RULES = [
    (
        "no-raw-random",
        [
            r"\brand\s*\(",
            r"\bsrand\s*\(",
            r"\brandom_device\b",
        ],
        lambda p: (p.startswith("src/") or p.startswith("bench/"))
        and not p.startswith("src/util/rng"),
        "raw randomness outside util/rng breaks deterministic replication",
    ),
    (
        "no-console-io",
        [
            r"\bstd::cout\b",
            r"\bstd::cerr\b",
            r"\bprintf\s*\(",
            r"\bfprintf\s*\(",
            r"\bputs\s*\(",
            r"\bputchar\s*\(",
        ],
        lambda p: p.startswith("src/")
        and p
        not in (
            "src/util/log.cpp",  # the logger's own sink
            "src/runner/result_sink.cpp",  # sinks are the output layer
        ),
        "library code must log via util/log or emit via runner sinks",
    ),
    (
        "no-raw-file-io",
        [
            r"\bstd::ofstream\b",
            r"\bfopen\s*\(",
        ],
        lambda p: (p.startswith("src/") or p.startswith("bench/"))
        and p
        not in (
            "src/util/atomic_write.cpp",  # the atomic writer itself
            "src/core/report.cpp",  # experiment report writer
            "src/util/table.cpp",  # Table CSV export
        ),
        "whole-file output goes through util::atomic_write (crash-atomic "
        "tmp + fsync + rename), not ad-hoc std::ofstream",
    ),
    (
        "no-float",
        [r"\bfloat\b"],
        lambda p: p.startswith("src/"),
        "simulation arithmetic is double-only; float loses sub-second "
        "precision over simulated years",
    ),
    (
        "no-wall-clock",
        [
            r"\bstd::chrono\b",
            r"\bsystem_clock\b",
            r"\bsteady_clock\b",
            r"\bhigh_resolution_clock\b",
            r"\bgettimeofday\s*\(",
            r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)",
            r"\bclock\s*\(\s*\)",
        ],
        lambda p: p.startswith("src/") and not p.startswith("src/metrics/"),
        "the deterministic core reads time only from sim::Engine::now(); "
        "sanctioned duration uses need an inline allow",
    ),
    (
        "no-raw-clock",
        [
            r"\bsystem_clock\b",
            r"\bsteady_clock\b",
            r"\bhigh_resolution_clock\b",
            r"\bgettimeofday\s*\(",
            r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)",
            r"\bclock\s*\(\s*\)",
        ],
        lambda p: (p.startswith("src/") or p.startswith("bench/"))
        and not p.startswith("src/metrics/"),
        "wall-clock reads are confined to src/metrics "
        "(metrics::nowSeconds is the single time source)",
    ),
]

ALLOW_RE = re.compile(r"//\s*pqos-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

STRING_OR_CHAR_RE = re.compile(
    r'"(?:[^"\\\n]|\\.)*"|' r"'(?:[^'\\\n]|\\.)*'"
)
LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Removes string/char literals and comments so patterns match only
    code. Tracks /* ... */ across lines. Good enough for this tree's
    idiom; pathological token pasting is out of scope."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i : i + 2]
        if nxt == "/*":
            in_block_comment = True
            i += 2
            continue
        if nxt == "//":
            break
        if ch in "\"'":
            m = STRING_OR_CHAR_RE.match(line, i)
            if m:
                out.append('""' if ch == '"' else "''")
                i = m.end()
                continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def lint_text(rel_path: str, text: str) -> list[tuple[str, int, str, str]]:
    """Returns findings as (path, line_number, rule, line)."""
    findings = []
    active = [r for r in RULES if r[2](rel_path)]
    lines = text.splitlines()
    if active:
        in_block = False
        for lineno, raw in enumerate(lines, start=1):
            allow = ALLOW_RE.search(raw)
            allowed = (
                {r.strip() for r in allow.group(1).split(",")}
                if allow
                else set()
            )
            code, in_block = strip_code_line(raw, in_block)
            if not code.strip():
                continue
            for rule, patterns, _scope, _msg in active:
                if rule in allowed:
                    continue
                for pattern in patterns:
                    if re.search(pattern, code):
                        findings.append((rel_path, lineno, rule, raw.strip()))
                        break
    if rel_path.startswith("src/") and rel_path.endswith(".hpp"):
        if not any(line.strip() == "#pragma once" for line in lines):
            findings.append((rel_path, 1, "pragma-once", "missing #pragma once"))
    return findings


FAILPOINT_USE_RE = re.compile(r'PQOS_FAILPOINT\("([^"]+)"\)')
FAILPOINT_SITE_RE = re.compile(r'\{"([a-z0-9_.-]+)",')


def check_failpoint_sites(root: Path) -> list[tuple[str, int, str, str]]:
    """Cross-checks every PQOS_FAILPOINT("name") literal in the tree
    against the catalogue in src/failpoint/failpoint.cpp, both ways: an
    uncatalogued evaluation throws LogicError at runtime (caught here at
    lint time instead), and a catalogued-but-never-evaluated site means
    the chaos stage probes dead code."""
    findings = []
    catalogue_path = root / "src" / "failpoint" / "failpoint.cpp"
    if not catalogue_path.is_file():
        return [("src/failpoint/failpoint.cpp", 1, "failpoint-site",
                 "failpoint catalogue file is missing")]
    match = re.search(r"kSites\[\]\s*=\s*\{(.*?)\n\};",
                      catalogue_path.read_text(encoding="utf-8"), re.S)
    if not match:
        return [("src/failpoint/failpoint.cpp", 1, "failpoint-site",
                 "could not locate the kSites catalogue")]
    catalogued = set(FAILPOINT_SITE_RE.findall(match.group(1)))

    used: dict[str, tuple[str, int]] = {}
    for pattern in ("src/**/*.hpp", "src/**/*.cpp", "bench/*.cpp",
                    "bench/*.hpp", "tests/*.cpp", "examples/*.cpp"):
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8")
            for lineno, line in enumerate(text.splitlines(), start=1):
                for site in FAILPOINT_USE_RE.findall(line):
                    used.setdefault(site, (rel, lineno))
    for site in sorted(set(used) - catalogued):
        rel, lineno = used[site]
        findings.append(
            (rel, lineno, "failpoint-site",
             f'PQOS_FAILPOINT("{site}") is not in the failpoint catalogue')
        )
    for site in sorted(catalogued - set(used)):
        findings.append(
            ("src/failpoint/failpoint.cpp", 1, "failpoint-site",
             f"catalogued site '{site}' is never evaluated anywhere")
        )
    return findings


METRIC_USE_RE = re.compile(
    r'PQOS_METRIC_(?:COUNT_N|COUNT|GAUGE_MAX|SPAN)\(\s*"([^"]+)"'
    r'|metrics::idOf\("([^"]+)"\)'
)
METRIC_SITE_RE = re.compile(r'\{"([a-z0-9_.-]+)",\s*Kind::')


def check_metric_sites(root: Path) -> list[tuple[str, int, str, str]]:
    """Cross-checks every PQOS_METRIC_* hook and metrics::idOf() lookup
    against the kMetrics catalogue in src/metrics/metrics.cpp, both ways
    (the metric twin of check_failpoint_sites)."""
    findings = []
    catalogue_path = root / "src" / "metrics" / "metrics.cpp"
    if not catalogue_path.is_file():
        return [("src/metrics/metrics.cpp", 1, "metric-site",
                 "metric catalogue file is missing")]
    match = re.search(r"kMetrics\[\]\s*=\s*\{(.*?)\n\};",
                      catalogue_path.read_text(encoding="utf-8"), re.S)
    if not match:
        return [("src/metrics/metrics.cpp", 1, "metric-site",
                 "could not locate the kMetrics catalogue")]
    catalogued = set(METRIC_SITE_RE.findall(match.group(1)))

    used: dict[str, tuple[str, int]] = {}
    for pattern in ("src/**/*.hpp", "src/**/*.cpp", "bench/*.cpp",
                    "bench/*.hpp", "tests/*.cpp", "examples/*.cpp"):
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("src/metrics/"):
                continue  # the catalogue/registry itself is not a use site
            text = path.read_text(encoding="utf-8")
            for lineno, line in enumerate(text.splitlines(), start=1):
                for groups in METRIC_USE_RE.findall(line):
                    name = groups[0] or groups[1]
                    used.setdefault(name, (rel, lineno))
    for name in sorted(set(used) - catalogued):
        rel, lineno = used[name]
        findings.append(
            (rel, lineno, "metric-site",
             f'metric "{name}" is not in the metrics.cpp catalogue')
        )
    for name in sorted(catalogued - set(used)):
        findings.append(
            ("src/metrics/metrics.cpp", 1, "metric-site",
             f"catalogued metric '{name}' is never recorded anywhere")
        )
    return findings


def lint_tree(root: Path, quiet: bool) -> int:
    findings = []
    scanned = 0
    for pattern in ("src/**/*.hpp", "src/**/*.cpp", "bench/*.cpp",
                    "bench/*.hpp"):
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            scanned += 1
            findings.extend(lint_text(rel, path.read_text(encoding="utf-8")))
    # Cross-check: the header self-containment gate must stay wired into
    # the build; losing it would silently drop half of the header policy.
    tests_cmake = root / "tests" / "CMakeLists.txt"
    if "pqos_header_selfcontain" not in tests_cmake.read_text(encoding="utf-8"):
        findings.append(
            ("tests/CMakeLists.txt", 1, "pragma-once",
             "pqos_header_selfcontain target missing from the build")
        )
    findings.extend(check_failpoint_sites(root))
    findings.extend(check_metric_sites(root))
    for rel, lineno, rule, line in findings:
        print(f"{rel}:{lineno}: [{rule}] {line}")
    if not quiet or findings:
        print(
            f"pqos-lint: {scanned} files scanned, "
            f"{len(findings)} finding(s)"
        )
    return 1 if findings else 0


# --- Self-tests -----------------------------------------------------------

SELF_TESTS = [
    # (name, path, snippet, expected rules firing)
    ("rand in core", "src/core/simulator.cpp",
     "int x = rand();\n", {"no-raw-random"}),
    ("random_device in bench", "bench/bench_foo.cpp",
     "std::random_device rd;\n", {"no-raw-random"}),
    ("rng module may mention random_device", "src/util/rng.cpp",
     "std::random_device rd;  // documented non-use\n", set()),
    ("cout in library", "src/sched/allocation.cpp",
     'std::cout << "debug";\n', {"no-console-io"}),
    ("printf in library", "src/core/metrics.cpp",
     'printf("%d", 1);\n', {"no-console-io"}),
    ("snprintf formatting is fine", "src/util/strings.cpp",
     "std::snprintf(buf, sizeof buf, \"%.3f\", v);\n", set()),
    ("logger exempt", "src/util/log.cpp",
     "std::cerr << message;\n", set()),
    ("result sinks exempt", "src/runner/result_sink.cpp",
     "os_(&std::cerr) {}\n", set()),
    ("ofstream in core", "src/core/simulator.cpp",
     'std::ofstream dump("/tmp/trace.jsonl");\n', {"no-raw-file-io"}),
    ("fopen in sched", "src/sched/negotiator.cpp",
     'FILE* f = fopen("log.txt", "w");\n', {"no-raw-file-io"}),
    ("atomic_write owns the raw handle", "src/util/atomic_write.cpp",
     "std::ofstream file(tmp, std::ios::binary);\n", set()),
    ("trace jsonl must use atomic_write", "src/trace/jsonl.cpp",
     "std::ofstream file(target);\n", {"no-raw-file-io"}),
    ("result sinks must use atomic_write", "src/runner/result_sink.cpp",
     "std::ofstream file(target);\n", {"no-raw-file-io"}),
    ("bench writers must use atomic_write", "bench/harness.cpp",
     "std::ofstream csv(path);\n", {"no-raw-file-io"}),
    ("fabric lease writes must use atomic_write", "src/fabric/lease.cpp",
     "std::ofstream lease(path);\n", {"no-raw-file-io"}),
    ("fabric merge writes must use atomic_write", "src/fabric/merge.cpp",
     'FILE* f = fopen("merged.json", "w");\n', {"no-raw-file-io"}),
    ("lease birth stamp carries both clock allows", "src/fabric/lease.cpp",
     "lease.unixSeconds = static_cast<std::int64_t>(::time(nullptr));"
     "  // pqos-lint: allow(no-wall-clock, no-raw-clock)\n",
     set()),
    ("ofstream in string ok", "src/core/simulator.cpp",
     'const char* doc = "std::ofstream";\n', set()),
    ("float in sim", "src/sim/engine.cpp",
     "float t = 0;\n", {"no-float"}),
    ("float in comment ok", "src/sim/engine.cpp",
     "// float is banned here\ndouble t = 0;\n", set()),
    ("float in string ok", "src/core/report.cpp",
     'const char* k = "float";\n', set()),
    ("chrono in core", "src/sim/engine.cpp",
     "auto t0 = std::chrono::steady_clock::now();\n",
     {"no-wall-clock", "no-raw-clock"}),
    ("time(nullptr) in core", "src/failure/generator.cpp",
     "auto seed = time(nullptr);\n", {"no-wall-clock", "no-raw-clock"}),
    ("runner clock reads moved to metrics::nowSeconds",
     "src/runner/sweep_runner.cpp",
     "auto t0 = std::chrono::steady_clock::now();\n",
     {"no-wall-clock", "no-raw-clock"}),
    ("runner sleeps need an inline allow", "src/runner/sweep_runner.cpp",
     "std::this_thread::sleep_for(std::chrono::milliseconds(delay));\n",
     {"no-wall-clock"}),
    ("allowed runner sleep is a duration, not a clock read",
     "src/runner/sweep_runner.cpp",
     "std::this_thread::sleep_for(std::chrono::milliseconds(delay));"
     "  // pqos-lint: allow(no-wall-clock)\n",
     set()),
    ("failpoint delay sleep needs its allow", "src/failpoint/failpoint.cpp",
     "std::this_thread::sleep_for(std::chrono::milliseconds(p0));"
     "  // pqos-lint: allow(no-wall-clock)\n",
     set()),
    ("metrics layer owns the clock", "src/metrics/metrics.cpp",
     "static const auto epoch = std::chrono::steady_clock::now();\n",
     set()),
    ("bench harness must use the metrics clock", "bench/harness.cpp",
     "auto t0 = std::chrono::steady_clock::now();\n", {"no-raw-clock"}),
    ("engine now() is not a wall clock", "src/core/simulator.cpp",
     "const SimTime now = engine_.now();\n", set()),
    ("missing pragma once", "src/core/new_header.hpp",
     "namespace pqos {}\n", {"pragma-once"}),
    ("pragma once present", "src/core/new_header.hpp",
     "#pragma once\nnamespace pqos {}\n", set()),
    ("inline allow suppresses", "src/core/simulator.cpp",
     "std::cout << x;  // pqos-lint: allow(no-console-io)\n", set()),
    ("allow only silences its rule", "src/core/simulator.cpp",
     "float f = rand();  // pqos-lint: allow(no-float)\n",
     {"no-raw-random"}),
    ("block comment spans lines", "src/core/simulator.cpp",
     "/* printf(\n   std::cout\n*/\ndouble ok = 0;\n", set()),
]


def self_test() -> int:
    failures = 0
    for name, path, snippet, expected in SELF_TESTS:
        got = {rule for (_p, _l, rule, _s) in lint_text(path, snippet)}
        if got != expected:
            failures += 1
            print(
                f"SELF-TEST FAIL: {name}: expected {sorted(expected)}, "
                f"got {sorted(got)}"
            )
    total = len(SELF_TESTS)
    if failures:
        print(f"pqos-lint self-test: {failures}/{total} FAILED")
        return 1
    print(f"pqos-lint self-test: {total}/{total} passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="print nothing when the tree is clean",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the embedded rule fixtures and exit",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not (args.root / "src").is_dir():
        print(f"pqos-lint: no src/ under {args.root}", file=sys.stderr)
        return 2
    return lint_tree(args.root, args.quiet)


if __name__ == "__main__":
    sys.exit(main())
