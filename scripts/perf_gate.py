#!/usr/bin/env python3
"""Performance-regression gate over the pqos::metrics perf export.

Runs the canonical figure sweeps (NASA + SDSC job logs, fixed seed,
single worker thread), collects each run's "perf" block (schema
pqos-perf-v1) from the runner's JSON sink, and writes BENCH_PERF.json
with git/build provenance. The gate then compares the *deterministic*
work counters — events dispatched, queue pushes, predictor queries, span
call counts — against the checked-in baseline (bench/perf_baseline.json):
for a fixed spec these are exact, machine-independent quantities, so a
drift beyond --counter-tolerance means the code now does measurably
different work, not that the CI box was busy. Wall time is always
recorded (min over --runs) but only gated when --wall-tolerance is set,
because a checked-in wall baseline is only meaningful on the machine
that produced it.

    scripts/perf_gate.py --build-dir build-release
    scripts/perf_gate.py --build-dir build-release --update-baseline
    scripts/perf_gate.py --overhead --build-dir build-release \
        --off-build build-perf-off

--overhead mode answers a different question: with the metric hooks
compiled in (-DPQOS_METRICS=ON, the default) but simply left running,
how much slower is the sweep than a hook-free -DPQOS_METRICS=OFF build?
The bound (--overhead-tolerance, default 5%) is the tentpole's budget;
both sides are min-of-N on the same machine in the same session, so the
comparison is fair.

Exit status: 0 = within tolerance, 1 = regression or overhead breach,
2 = setup problem (missing binary, metrics compiled out, no baseline).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Canonical gate workloads: one sweep per job log, small enough to run
# in seconds but large enough that the hot paths dominate. Single worker
# thread keeps wall time comparable between runs on a loaded CI box.
# extra_args entries may reference {scratch}, the per-run temporary
# directory, so stateful paths (a lease directory) start fresh each run.
BENCHES = [
    {
        "name": "fig1_sdsc",
        "binary": "bench/bench_fig1_qos_vs_accuracy_sdsc",
    },
    {
        "name": "fig2_nasa",
        "binary": "bench/bench_fig2_qos_vs_accuracy_nasa",
    },
    # The fabric gate workload: the same NASA sweep as a lone shard-0/2
    # worker with a lease directory. It leases its own half of the grid,
    # then steals the ownerless other half, so the fabric work counters
    # (fabric.cells.leased / fabric.cells.stolen) are exact for a fixed
    # spec — gateable like every other deterministic counter.
    {
        "name": "fig2_nasa_sharded",
        "binary": "bench/bench_fig2_qos_vs_accuracy_nasa",
        "extra_args": ["--shard", "0/2", "--lease-dir", "{scratch}/claims"],
    },
]
BENCH_ARGS = ["--jobs", "400", "--seed", "42", "--threads", "1", "--reps", "1"]

# --overhead runs a 4x workload: after the simulation-core overhaul the
# 400-job walls are under 0.1 s, where box jitter (easily +-10% on a busy
# single-CPU runner) drowns the few-percent signal being measured. The
# hook count scales with jobs, so the ratio is the same quantity — just
# measurable.
OVERHEAD_JOBS = "1600"


def fail(message):
    print(f"perf_gate: {message}", file=sys.stderr)
    sys.exit(2)


def run_bench(build_dir, bench, runs, jobs=None):
    """Runs one bench binary `runs` times; returns (best_record, sweep_doc).

    best_record carries the deterministic counters from the last run (they
    are identical across runs — verified) and the minimum wall time.
    `jobs` overrides BENCH_ARGS' --jobs (the --overhead mode's larger
    workload).
    """
    binary = os.path.join(build_dir, bench["binary"])
    if not os.path.isfile(binary):
        fail(f"bench binary not found: {binary} (build it first)")
    bench_args = list(BENCH_ARGS)
    if jobs is not None:
        bench_args[bench_args.index("--jobs") + 1] = jobs
    walls = []
    doc = None
    for _ in range(runs):
        with tempfile.TemporaryDirectory(prefix="pqos_perf_gate.") as scratch:
            out = os.path.join(scratch, "sweep.json")
            extra = [
                arg.format(scratch=scratch)
                for arg in bench.get("extra_args", [])
            ]
            command = [binary, *bench_args, *extra, "--json", out]
            result = subprocess.run(
                command, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE
            )
            if result.returncode != 0:
                fail(
                    f"{' '.join(command)} exited {result.returncode}:\n"
                    f"{result.stderr.decode(errors='replace')}"
                )
            with open(out, encoding="utf-8") as handle:
                doc = json.load(handle)
        walls.append(doc["wallSeconds"])

    record = {
        "name": bench["name"],
        "binary": bench["binary"],
        "args": [*bench_args, *bench.get("extra_args", [])],
        "wallSeconds": min(walls),
        "wallSecondsRuns": walls,
    }
    perf = doc.get("perf")
    if perf is not None:
        record["counters"] = perf["counters"]
        record["gauges"] = perf["gauges"]
        record["spanCalls"] = {
            span["name"]: span["count"]
            for span in perf["spans"]
            if span["count"] > 0
        }
    return record, doc


def deterministic_values(record):
    """Flattens the gated quantities of one bench record to {key: value}."""
    values = {}
    for group in ("counters", "gauges", "spanCalls"):
        for name, value in record.get(group, {}).items():
            values[f"{group}.{name}"] = value
    return values


def compare_record(name, measured, baseline, tolerance):
    """Returns a list of violation strings for one bench."""
    violations = []
    current = deterministic_values(measured)
    reference = deterministic_values(baseline)
    for key in sorted(set(current) | set(reference)):
        have = current.get(key)
        want = reference.get(key)
        if have is None or want is None:
            violations.append(
                f"{name}: {key} {'appeared' if want is None else 'vanished'} "
                f"(baseline {want}, measured {have}); if intentional, rerun "
                f"with --update-baseline"
            )
            continue
        limit = max(abs(want) * tolerance, 0.0)
        if abs(have - want) > limit:
            drift = (have - want) / want * 100.0 if want else float("inf")
            violations.append(
                f"{name}: {key} drifted {drift:+.2f}% "
                f"(baseline {want}, measured {have}, tolerance "
                f"{tolerance * 100:.1f}%)"
            )
    return violations


def gate(args):
    benches = []
    provenance = {}
    for bench in BENCHES:
        record, doc = run_bench(args.build_dir, bench, args.runs)
        if "counters" not in record:
            fail(
                "no perf block in sweep JSON: the build has metrics "
                "compiled out (-DPQOS_METRICS=OFF); the gate needs the "
                "default -DPQOS_METRICS=ON build"
            )
        provenance = {
            "gitDescribe": doc["gitDescribe"],
            "buildType": doc["buildType"],
            "compiler": doc["compiler"],
        }
        events = record["counters"].get("sim.engine.events", 0)
        wall = record["wallSeconds"]
        record["eventsPerSecond"] = events / wall if wall > 0 else 0.0
        print(
            f"perf_gate: {record['name']}: wall {wall:.3f} s "
            f"(min of {args.runs}), {events} events, "
            f"{record['eventsPerSecond'] / 1000.0:.0f}k events/s"
        )
        benches.append(record)

    report = {
        "schema": "pqos-perf-v1",
        "generator": "scripts/perf_gate.py",
        **provenance,
        "runsPerBench": args.runs,
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"perf_gate: wrote {args.out}")

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"perf_gate: baseline updated: {args.baseline}")
        return 0

    if not os.path.isfile(args.baseline):
        fail(
            f"no baseline at {args.baseline}; create one with "
            f"--update-baseline"
        )
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_by_name = {b["name"]: b for b in baseline["benches"]}

    violations = []
    for record in benches:
        reference = baseline_by_name.get(record["name"])
        if reference is None:
            violations.append(
                f"{record['name']}: not in baseline; rerun with "
                f"--update-baseline"
            )
            continue
        violations.extend(
            compare_record(
                record["name"], record, reference, args.counter_tolerance
            )
        )
        if args.wall_tolerance > 0:
            want = reference["wallSeconds"]
            have = record["wallSeconds"]
            if have > want * (1.0 + args.wall_tolerance):
                violations.append(
                    f"{record['name']}: wall {have:.3f} s exceeds baseline "
                    f"{want:.3f} s by more than "
                    f"{args.wall_tolerance * 100:.0f}%"
                )

    if violations:
        print(f"perf_gate: {len(violations)} violation(s):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(
        f"perf_gate: OK — {len(benches)} bench(es) within "
        f"{args.counter_tolerance * 100:.1f}% of baseline "
        f"({baseline['gitDescribe']})"
    )
    return 0


def overhead(args):
    if not args.off_build:
        fail("--overhead needs --off-build <dir> (a -DPQOS_METRICS=OFF build)")
    worst = 0.0
    for bench in BENCHES:
        on_record, on_doc = run_bench(
            args.build_dir, bench, args.runs, jobs=OVERHEAD_JOBS
        )
        off_record, off_doc = run_bench(
            args.off_build, bench, args.runs, jobs=OVERHEAD_JOBS
        )
        if "counters" not in on_record:
            fail(f"--build-dir {args.build_dir} has metrics compiled out")
        if "counters" in off_record:
            fail(
                f"--off-build {args.off_build} has metrics compiled IN; "
                f"configure it with -DPQOS_METRICS=OFF"
            )
        on_wall = on_record["wallSeconds"]
        off_wall = off_record["wallSeconds"]
        ratio = (on_wall - off_wall) / off_wall if off_wall > 0 else 0.0
        worst = max(worst, ratio)
        print(
            f"perf_gate: overhead {bench['name']}: ON {on_wall:.3f} s vs "
            f"OFF {off_wall:.3f} s = {ratio * 100:+.2f}% "
            f"(min of {args.runs} each, --jobs {OVERHEAD_JOBS})"
        )
        del on_doc, off_doc
    if worst > args.overhead_tolerance:
        print(
            f"perf_gate: metric-hook overhead {worst * 100:.2f}% exceeds "
            f"the {args.overhead_tolerance * 100:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    print(
        f"perf_gate: OK — worst overhead {worst * 100:+.2f}% within the "
        f"{args.overhead_tolerance * 100:.0f}% budget"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--build-dir",
        default=os.path.join(root, "build-release"),
        help="metrics-ON build tree with the bench binaries",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(root, "bench", "perf_baseline.json"),
        help="checked-in reference BENCH_PERF.json",
    )
    parser.add_argument(
        "--out",
        default="BENCH_PERF.json",
        help="where to write the measured report",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=3,
        help="runs per bench; wall time is the minimum",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.02,
        help="allowed relative drift of deterministic work counters",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.0,
        help="gate wall time too (same-machine baselines only); 0 = off",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this measurement instead of gating",
    )
    parser.add_argument(
        "--overhead",
        action="store_true",
        help="compare against a -DPQOS_METRICS=OFF build instead",
    )
    parser.add_argument(
        "--off-build",
        default="",
        help="metrics-OFF build tree for --overhead",
    )
    parser.add_argument(
        "--overhead-tolerance",
        type=float,
        default=0.05,
        help="allowed ON-vs-OFF wall-time overhead for --overhead",
    )
    args = parser.parse_args()
    if args.overhead:
        sys.exit(overhead(args))
    sys.exit(gate(args))


if __name__ == "__main__":
    main()
