#!/usr/bin/env bash
# Builds and tests the two configurations that matter for the experiment
# runner: plain Release (what benches run as) and ThreadSanitizer (to catch
# races in the parallel sweep machinery). Usage:
#
#   scripts/check.sh            # both configurations
#   scripts/check.sh release    # just Release
#   scripts/check.sh tsan       # just TSan
#
# JOBS=<n> overrides the parallelism (default: nproc).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
WHICH="${1:-all}"

run_config() {
  local dir="$1"
  shift
  echo "=== configuring $dir ($*) ==="
  cmake -B "$ROOT/$dir" -S "$ROOT" "$@"
  echo "=== building $dir ==="
  cmake --build "$ROOT/$dir" -j "$JOBS"
  echo "=== testing $dir ==="
  ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS"
}

# RelWithDebInfo keeps the suite fast enough under TSan's ~5-15x slowdown
# while retaining symbolized reports.
case "$WHICH" in
  release)
    run_config build-release -DCMAKE_BUILD_TYPE=Release
    ;;
  tsan)
    run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
               -DPQOS_SANITIZE=thread
    ;;
  all)
    run_config build-release -DCMAKE_BUILD_TYPE=Release
    run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
               -DPQOS_SANITIZE=thread
    ;;
  *)
    echo "usage: $0 [release|tsan|all]" >&2
    exit 2
    ;;
esac

echo "=== all requested configurations passed ==="
