#!/usr/bin/env bash
# The pqos correctness gate: builds and tests every configuration that
# guards the simulator's trustworthiness, then prints a summary table.
#
#   scripts/check.sh                  # --all
#   scripts/check.sh --all            # every stage below
#   scripts/check.sh --release       # plain Release build + ctest
#   scripts/check.sh --tsan          # ThreadSanitizer (parallel runner races)
#   scripts/check.sh --strict        # PQOS_STRICT warnings-as-errors wall
#   scripts/check.sh --ubsan         # UBSan+ASan, UB aborts the tests
#   scripts/check.sh --audit         # PQOS_AUDIT invariant auditor armed
#   scripts/check.sh --tidy          # clang-tidy (skipped if not installed)
#   scripts/check.sh --lint          # pqos_lint.py self-test + tree scan
#   scripts/check.sh --analyze       # pqos_analyze: include-graph layering
#                                    # + determinism/lock-discipline scan
#   scripts/check.sh --tsa           # clang -Wthread-safety over src/
#                                    # (skipped if clang++ not installed)
#   scripts/check.sh --eventq        # determinism suites + sweep/trace
#                                    # byte-compare on the calendar queue
#   scripts/check.sh --fanalyzer     # gcc -fanalyzer over src/ (opt-in:
#                                    # experimental for C++, ~1s per TU)
#   scripts/check.sh --coverage      # gcov line coverage summary (opt-in)
#   scripts/check.sh --chaos         # fault-injection sweep + kill/resume
#                                    # torture (opt-in)
#   scripts/check.sh --perf          # perf-regression gate + metric-hook
#                                    # overhead bound (opt-in)
#   scripts/check.sh --fleet         # 4-worker supervised sharded sweep
#                                    # with a chaos-killed worker; merged
#                                    # output vs serial golden (opt-in)
#
# Stages may be combined (e.g. `--strict --lint`). The legacy positional
# spellings `release`, `tsan`, and `all` are still accepted. JOBS=<n>
# overrides the build/test parallelism (default: nproc). The script keeps
# going after a stage fails so the table shows every result; the exit
# status is nonzero when any stage failed. The coverage stage is opt-in
# (never part of --all): an instrumented -O0 build is several times slower
# than Release, and its threshold is a warning, not a gate.
#
# SKIP vs PASS: a stage that cannot run (missing tool) reports SKIP, and
# the summary counts it separately — a SKIP is not a PASS. `--no-skip`
# promotes SKIP to failure for environments (CI with clang installed)
# where every stage is expected to actually run.
set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

STAGE_NAMES=()
STAGE_RESULTS=()

note() {
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
}

# run_config <stage> <builddir> <cmake-args...>: configure, build, ctest.
run_config() {
  local stage="$1" dir="$2"
  shift 2
  echo "=== [$stage] configuring $dir ($*) ==="
  if ! cmake -B "$ROOT/$dir" -S "$ROOT" "$@"; then
    note "$stage" FAIL
    return 1
  fi
  echo "=== [$stage] building $dir ==="
  if ! cmake --build "$ROOT/$dir" -j "$JOBS"; then
    note "$stage" FAIL
    return 1
  fi
  echo "=== [$stage] testing $dir ==="
  if ! ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS"; then
    note "$stage" FAIL
    return 1
  fi
  note "$stage" PASS
}

# Every configuration pins both correctness options explicitly so a stale
# CMake cache from another stage can never leak flags across stages.
stage_release() {
  run_config release build-release \
    -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
    -DPQOS_SANITIZE=
}

# RelWithDebInfo keeps the suite fast enough under TSan's ~5-15x slowdown
# while retaining symbolized reports.
stage_tsan() {
  # scripts/tsan.supp documents the one known false positive (libstdc++'s
  # uninstrumented exception_ptr refcount on cross-thread rethrow).
  TSAN_OPTIONS="suppressions=$ROOT/scripts/tsan.supp ${TSAN_OPTIONS:-}" \
  run_config tsan build-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
    -DPQOS_SANITIZE=thread
}

stage_strict() {
  run_config strict build-strict \
    -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=ON -DPQOS_AUDIT=OFF \
    -DPQOS_SANITIZE=
}

stage_ubsan() {
  run_config ubsan build-ubsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
    -DPQOS_SANITIZE=undefined,address
}

stage_audit() {
  run_config audit build-audit \
    -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=ON \
    -DPQOS_SANITIZE=
}

stage_tidy() {
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "=== [tidy] clang-tidy not installed; skipping ==="
    note tidy SKIP
    return 0
  fi
  echo "=== [tidy] configuring compile database ==="
  if ! cmake -B "$ROOT/build-release" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE= -DCMAKE_EXPORT_COMPILE_COMMANDS=ON; then
    note tidy FAIL
    return 1
  fi
  echo "=== [tidy] clang-tidy over src/ ==="
  local sources
  mapfile -t sources < <(find "$ROOT/src" -name '*.cpp' | sort)
  if ! clang-tidy -p "$ROOT/build-release" --quiet "${sources[@]}"; then
    note tidy FAIL
    return 1
  fi
  note tidy PASS
}

stage_lint() {
  echo "=== [lint] pqos_lint.py self-test ==="
  if ! python3 "$ROOT/scripts/pqos_lint.py" --self-test; then
    note lint FAIL
    return 1
  fi
  echo "=== [lint] pqos_lint.py tree scan ==="
  if ! python3 "$ROOT/scripts/pqos_lint.py" --root "$ROOT"; then
    note lint FAIL
    return 1
  fi
  note lint PASS
}

# The repo's own static analyzer (tools/pqos_analyze): include-graph
# layering against the declared subsystem DAG, determinism rules
# (unordered iteration, pointer ordering), and the raw-mutex lock-
# vocabulary rule. Runs the fixture suite first (every rule proven to
# fire), then the tree scan (zero findings required).
stage_analyze() {
  local dir=build-release
  echo "=== [analyze] building pqos_analyze + fixtures in $dir ==="
  if ! cmake -B "$ROOT/$dir" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE=; then
    note analyze FAIL
    return 1
  fi
  if ! cmake --build "$ROOT/$dir" -j "$JOBS" --target \
       pqos_analyze analyze_test; then
    note analyze FAIL
    return 1
  fi
  echo "=== [analyze] rule fixture suite ==="
  if ! "$ROOT/$dir/tests/analyze_test"; then
    note analyze FAIL
    return 1
  fi
  echo "=== [analyze] layering + determinism scan of the tree ==="
  if ! "$ROOT/$dir/tools/pqos_analyze" --root "$ROOT"; then
    note analyze FAIL
    return 1
  fi
  note analyze PASS
}

# Clang thread-safety analysis over the annotated lock structures
# (util/thread_annotations.hpp). Compile-only: -fsyntax-only per TU with
# only the thread-safety diagnostic group armed, so a clang that warns
# differently than GCC elsewhere cannot fail the stage for non-TSA
# reasons. The negative control (tests/tsa_bad_lock_fixture.cpp) must
# FAIL to compile — a stage that cannot reject broken locking is itself
# broken.
stage_tsa() {
  if ! command -v clang++ > /dev/null 2>&1; then
    echo "=== [tsa] clang++ not installed; skipping (GCC cannot check" \
         "thread-safety annotations) ==="
    note tsa SKIP
    return 0
  fi
  local flags=(-std=c++20 -fsyntax-only -I "$ROOT/src"
               -DPQOS_METRICS=1 -DPQOS_TRACE=1 -DPQOS_FAILPOINT_ENABLED=1
               -DPQOS_FABRIC_ENABLED=1
               -Wno-everything -Wthread-safety -Werror=thread-safety)
  echo "=== [tsa] clang -Wthread-safety over src/ ==="
  local failed=0 tu
  while IFS= read -r tu; do
    if ! clang++ "${flags[@]}" "$tu"; then
      echo "[tsa] $tu: thread-safety violations"
      failed=$((failed + 1))
    fi
  done < <(find "$ROOT/src" -name '*.cpp' | sort)
  echo "=== [tsa] negative control: bad-lock fixture must fail ==="
  if clang++ "${flags[@]}" "$ROOT/tests/tsa_bad_lock_fixture.cpp" \
     > /dev/null 2>&1; then
    echo "[tsa] tests/tsa_bad_lock_fixture.cpp compiled cleanly:" \
         "the stage is not detecting violations"
    failed=$((failed + 1))
  fi
  if [ "$failed" -gt 0 ]; then
    note tsa FAIL
    return 1
  fi
  note tsa PASS
}

# GCC's interprocedural path analyzer. Experimental for C++ (the GCC docs
# say so explicitly), which is why it is opt-in rather than part of
# --all; the tree currently scans clean, so any warning is treated as a
# finding to fix or justify here.
stage_fanalyzer() {
  local flags=(-std=c++20 -fsyntax-only -fanalyzer -I "$ROOT/src"
               -DPQOS_METRICS=1 -DPQOS_TRACE=1 -DPQOS_FAILPOINT_ENABLED=1
               -DPQOS_FABRIC_ENABLED=1)
  echo "=== [fanalyzer] gcc -fanalyzer over src/ ==="
  local failed=0 tu out
  while IFS= read -r tu; do
    if ! out=$(g++ "${flags[@]}" "$tu" 2>&1) || [ -n "$out" ]; then
      printf '%s\n' "$out"
      echo "[fanalyzer] $tu: analyzer findings"
      failed=$((failed + 1))
    fi
  done < <(find "$ROOT/src" -name '*.cpp' | sort)
  if [ "$failed" -gt 0 ]; then
    note fanalyzer FAIL
    return 1
  fi
  note fanalyzer PASS
}

# Instruments with gcov, runs the whole suite, and aggregates per-subsystem
# line coverage via scripts/coverage_summary.py. Fails only on tooling
# errors; a coverage dip below the target prints a WARNING but passes.
stage_coverage() {
  local dir=build-coverage
  echo "=== [coverage] configuring $dir ==="
  if ! cmake -B "$ROOT/$dir" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Debug -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE= \
       -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage; then
    note coverage FAIL
    return 1
  fi
  echo "=== [coverage] building $dir ==="
  if ! cmake --build "$ROOT/$dir" -j "$JOBS"; then
    note coverage FAIL
    return 1
  fi
  # Stale counters from a previous run would silently inflate the numbers.
  find "$ROOT/$dir" -name '*.gcda' -delete
  echo "=== [coverage] testing $dir ==="
  if ! ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS"; then
    note coverage FAIL
    return 1
  fi
  echo "=== [coverage] aggregating line coverage ==="
  if ! python3 "$ROOT/scripts/coverage_summary.py" \
       --build "$ROOT/$dir" --source "$ROOT" --warn-below 70; then
    note coverage FAIL
    return 1
  fi
  note coverage PASS
}

# Chaos stage: arms every failpoint site in turn against the chaos probe
# (which runs the full I/O gauntlet clean and armed, comparing bytes) and
# runs the kill-at-every-journal-append torture tests. Opt-in like
# coverage: it reruns the probe 2x per site, so it costs real wall time.
stage_chaos() {
  local dir=build-release
  echo "=== [chaos] building probe binaries in $dir ==="
  if ! cmake -B "$ROOT/$dir" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE= -DPQOS_FAILPOINT=ON; then
    note chaos FAIL
    return 1
  fi
  if ! cmake --build "$ROOT/$dir" -j "$JOBS" --target \
       example_chaos_probe example_dump_trace \
       runner_torture_test sweep_torture_helper failpoint_test; then
    note chaos FAIL
    return 1
  fi

  echo "=== [chaos] kill-and-resume torture + failpoint unit tests ==="
  if ! ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS" \
       -R 'Torture|Failpoint'; then
    note chaos FAIL
    return 1
  fi

  echo "=== [chaos] probing every catalogued failpoint site ==="
  local scratch site probe_rc failed=0
  scratch="$(mktemp -d /tmp/pqos_chaos.XXXXXX)"
  while IFS=$'\t' read -r site _desc; do
    [ -n "$site" ] || continue
    # Exit 0 (absorbed, byte-identical) and 1 (clean typed failure) are
    # both correct injection outcomes; 2 (divergence or leaked tmp file)
    # or a signal death means the fault corrupted something.
    "$ROOT/$dir/examples/example_chaos_probe" \
      --failpoints "${site}=error" --dir "$scratch/$site" > /dev/null 2>&1
    probe_rc=$?
    case "$probe_rc" in
      0) echo "[chaos] $site=error: absorbed (byte-identical)" ;;
      1) echo "[chaos] $site=error: clean failure" ;;
      *)
        echo "[chaos] $site=error: FAILED (exit $probe_rc)"
        failed=$((failed + 1))
        ;;
    esac
  done < <("$ROOT/$dir/examples/example_dump_trace" --list-failpoints \
           2> /dev/null)

  # An atomic write that leaks its temporary under any injection is a bug
  # even when the probe's byte comparison passed.
  if find "$scratch" -name '*.tmp.*' | grep -q .; then
    echo "[chaos] leaked atomic-write temporaries under $scratch"
    failed=$((failed + 1))
  fi
  rm -rf "$scratch"

  if [ "$failed" -gt 0 ]; then
    echo "=== [chaos] $failed site(s) failed ==="
    note chaos FAIL
    return 1
  fi
  note chaos PASS
}

# Eventq stage: the determinism wall re-run on the calendar event queue.
# PQOS_EVENTQ=calendar flips the runtime default, so the golden-trace,
# replay, runner-determinism, and queue-differential suites all execute on
# the non-oracle implementation; then a full fig1 sweep is byte-compared
# (modulo wallSeconds/gitDescribe/perf) between the heap and calendar
# queues, and a dump_trace --eventq calendar --verify run closes the
# record-replay loop. Part of --all: the calendar queue is only safe to
# offer as a knob while this stage stays green.
stage_eventq() {
  local dir=build-release
  echo "=== [eventq] building $dir ==="
  if ! cmake -B "$ROOT/$dir" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE=; then
    note eventq FAIL
    return 1
  fi
  if ! cmake --build "$ROOT/$dir" -j "$JOBS"; then
    note eventq FAIL
    return 1
  fi
  echo "=== [eventq] determinism suites under PQOS_EVENTQ=calendar ==="
  if ! PQOS_EVENTQ=calendar ctest --test-dir "$ROOT/$dir" \
       --output-on-failure -j "$JOBS" \
       -R 'Golden|Replay|Determinism|EventQueue|Engine|Metamorphic'; then
    note eventq FAIL
    return 1
  fi
  local scratch
  scratch="$(mktemp -d /tmp/pqos_eventq.XXXXXX)"
  local bench="$ROOT/$dir/bench/bench_fig1_qos_vs_accuracy_sdsc"
  local bench_args="--jobs 200 --seed 42 --threads 2 --reps 1"
  echo "=== [eventq] fig1 sweep byte-compare: heap vs calendar ==="
  # shellcheck disable=SC2086
  if ! PQOS_EVENTQ=heap "$bench" $bench_args \
       --json "$scratch/heap.json" > /dev/null ||
     ! PQOS_EVENTQ=calendar "$bench" $bench_args \
       --json "$scratch/calendar.json" > /dev/null; then
    note eventq FAIL
    rm -rf "$scratch"
    return 1
  fi
  if ! python3 - "$scratch/heap.json" "$scratch/calendar.json" << 'EOF'
import sys

def normalize(path):
    out, in_perf, perf_indent = [], False, 0
    with open(path, encoding="utf-8") as f:
        for line in f:
            if in_perf:
                indent = len(line) - len(line.lstrip(" "))
                if line.lstrip().startswith("}") and indent <= perf_indent:
                    in_perf = False
                continue
            at = line.find('"perf":')
            if at != -1:
                in_perf, perf_indent = True, at
                continue
            if '"wallSeconds":' in line or '"gitDescribe":' in line:
                continue
            out.append(line)
    return "".join(out)

heap, calendar = normalize(sys.argv[1]), normalize(sys.argv[2])
if heap != calendar:
    sys.exit("calendar-queue sweep diverges from the heap-queue sweep")
print("heap and calendar sweeps byte-identical"
      f" ({len(heap)} normalized bytes)")
EOF
  then
    note eventq FAIL
    rm -rf "$scratch"
    return 1
  fi
  echo "=== [eventq] dump_trace --eventq calendar --verify ==="
  if ! "$ROOT/$dir/examples/example_dump_trace" --eventq calendar \
       --jobs 150 --seed 7 --out "$scratch/verify.jsonl" --verify \
       > /dev/null; then
    note eventq FAIL
    rm -rf "$scratch"
    return 1
  fi
  rm -rf "$scratch"
  note eventq PASS
}

# Perf stage (opt-in, like coverage/chaos): runs scripts/perf_gate.py —
# the deterministic-counter regression gate against the checked-in
# bench/perf_baseline.json, then the metric-hook overhead bound against a
# freshly built -DPQOS_METRICS=OFF twin — and smokes the perf tooling.
# Opt-in because the overhead half needs a quiet machine and a second
# build tree.
stage_perf() {
  local on=build-release off=build-perf-off
  local targets=(bench_fig1_qos_vs_accuracy_sdsc
                 bench_fig2_qos_vs_accuracy_nasa example_perf_report)
  echo "=== [perf] building metrics-ON benches in $on ==="
  if ! cmake -B "$ROOT/$on" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE= -DPQOS_METRICS=ON; then
    note perf FAIL
    return 1
  fi
  if ! cmake --build "$ROOT/$on" -j "$JOBS" --target "${targets[@]}"; then
    note perf FAIL
    return 1
  fi
  echo "=== [perf] building metrics-OFF twin in $off ==="
  if ! cmake -B "$ROOT/$off" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE= -DPQOS_METRICS=OFF; then
    note perf FAIL
    return 1
  fi
  if ! cmake --build "$ROOT/$off" -j "$JOBS" --target \
       bench_fig1_qos_vs_accuracy_sdsc bench_fig2_qos_vs_accuracy_nasa; then
    note perf FAIL
    return 1
  fi

  echo "=== [perf] metric catalogue smoke (--list-metrics) ==="
  if ! "$ROOT/$on/examples/example_perf_report" --list-metrics > /dev/null; then
    note perf FAIL
    return 1
  fi
  echo "=== [perf] regression gate vs bench/perf_baseline.json ==="
  if ! python3 "$ROOT/scripts/perf_gate.py" --build-dir "$ROOT/$on" \
       --out "$ROOT/$on/BENCH_PERF.json"; then
    note perf FAIL
    return 1
  fi
  echo "=== [perf] metric-hook overhead bound (ON vs OFF) ==="
  if ! python3 "$ROOT/scripts/perf_gate.py" --overhead \
       --build-dir "$ROOT/$on" --off-build "$ROOT/$off" --runs 5; then
    note perf FAIL
    return 1
  fi
  note perf PASS
}

# Fleet stage (opt-in, like chaos): the multi-process fabric end to end.
# Runs the fabric unit suites, then a 4-worker supervised sharded sweep
# in which worker 1's first incarnation is chaos-killed mid-journal-
# append; the supervisor restart plus lease takeover must still produce
# merged bytes identical (modulo wallSeconds/gitDescribe/perf) to a
# serial golden run of the same spec.
stage_fleet() {
  local dir=build-release
  echo "=== [fleet] building fabric binaries in $dir ==="
  if ! cmake -B "$ROOT/$dir" -S "$ROOT" \
       -DCMAKE_BUILD_TYPE=Release -DPQOS_STRICT=OFF -DPQOS_AUDIT=OFF \
       -DPQOS_SANITIZE= -DPQOS_FAILPOINT=ON -DPQOS_FABRIC=ON; then
    note fleet FAIL
    return 1
  fi
  if ! cmake --build "$ROOT/$dir" -j "$JOBS" --target \
       bench_fig2_qos_vs_accuracy_nasa example_sweep_fleet \
       example_sweep_merge fleet_worker_helper \
       fabric_lease_test fabric_merge_test fabric_fleet_test; then
    note fleet FAIL
    return 1
  fi

  echo "=== [fleet] fabric unit suites ==="
  if ! ctest --test-dir "$ROOT/$dir" --output-on-failure -j "$JOBS" \
       -R 'Fleet|Merge|Lease|ParseShardSpec|Supervisor'; then
    note fleet FAIL
    return 1
  fi

  local scratch bench worker_args
  scratch="$(mktemp -d /tmp/pqos_fleet.XXXXXX)"
  bench="$ROOT/$dir/bench/bench_fig2_qos_vs_accuracy_nasa"
  worker_args="--jobs 200 --seed 42 --threads 2 --reps 2"
  echo "=== [fleet] serial golden sweep ==="
  # shellcheck disable=SC2086
  if ! "$bench" $worker_args --json "$scratch/golden.json" > /dev/null; then
    note fleet FAIL
    rm -rf "$scratch"
    return 1
  fi
  echo "=== [fleet] 4 supervised workers, worker 1 chaos-killed ==="
  if ! "$ROOT/$dir/examples/example_sweep_fleet" \
       --worker "$bench" --worker-args "$worker_args" --workers 4 \
       --dir "$scratch/fleet" --out "$scratch/merged.json" \
       --chaos-worker 1 \
       --chaos-failpoints 'runner.journal.append=abort(2)'; then
    note fleet FAIL
    rm -rf "$scratch"
    return 1
  fi
  echo "=== [fleet] merged output vs serial golden (normalized) ==="
  if ! python3 - "$scratch/golden.json" "$scratch/merged.json" << 'EOF'
import sys

def normalize(path):
    out, in_perf, perf_indent = [], False, 0
    with open(path, encoding="utf-8") as f:
        for line in f:
            if in_perf:
                indent = len(line) - len(line.lstrip(" "))
                if line.lstrip().startswith("}") and indent <= perf_indent:
                    in_perf = False
                continue
            at = line.find('"perf":')
            if at != -1:
                in_perf, perf_indent = True, at
                continue
            if '"wallSeconds":' in line or '"gitDescribe":' in line:
                continue
            out.append(line)
    return "".join(out)

golden, merged = normalize(sys.argv[1]), normalize(sys.argv[2])
if golden != merged:
    sys.exit("merged fleet output diverges from the serial golden run")
print("merged output byte-identical to serial golden"
      f" ({len(golden)} normalized bytes)")
EOF
  then
    note fleet FAIL
    rm -rf "$scratch"
    return 1
  fi
  # A crashed worker must not leak atomic-write temporaries either.
  if find "$scratch" -name '*.tmp.*' | grep -q .; then
    echo "[fleet] leaked atomic-write temporaries under $scratch"
    note fleet FAIL
    rm -rf "$scratch"
    return 1
  fi
  rm -rf "$scratch"
  note fleet PASS
}

# --all expands to ALL_STAGES; STAGE_ORDER additionally fixes where the
# opt-in stages run when requested explicitly.
ALL_STAGES=(release tsan strict ubsan audit tidy lint analyze tsa eventq)
STAGE_ORDER=("${ALL_STAGES[@]}" fanalyzer coverage chaos perf fleet)
REQUESTED=()
NO_SKIP=0

if [ "$#" -eq 0 ]; then
  REQUESTED=("${ALL_STAGES[@]}")
fi
for arg in "$@"; do
  case "$arg" in
    --all | all) REQUESTED+=("${ALL_STAGES[@]}") ;;
    --release | release) REQUESTED+=(release) ;;
    --tsan | tsan) REQUESTED+=(tsan) ;;
    --strict) REQUESTED+=(strict) ;;
    --ubsan) REQUESTED+=(ubsan) ;;
    --audit) REQUESTED+=(audit) ;;
    --tidy) REQUESTED+=(tidy) ;;
    --lint) REQUESTED+=(lint) ;;
    --analyze) REQUESTED+=(analyze) ;;
    --tsa) REQUESTED+=(tsa) ;;
    --eventq) REQUESTED+=(eventq) ;;
    --fanalyzer) REQUESTED+=(fanalyzer) ;;
    --coverage) REQUESTED+=(coverage) ;;
    --chaos) REQUESTED+=(chaos) ;;
    --perf) REQUESTED+=(perf) ;;
    --fleet) REQUESTED+=(fleet) ;;
    --no-skip) NO_SKIP=1 ;;
    *)
      echo "usage: $0 [--release|--tsan|--strict|--ubsan|--audit|--tidy|--lint|--analyze|--tsa|--eventq|--fanalyzer|--coverage|--chaos|--perf|--fleet|--no-skip|--all]" >&2
      exit 2
      ;;
  esac
done

# Deduplicate while preserving the canonical stage order.
for stage in "${STAGE_ORDER[@]}"; do
  for requested in "${REQUESTED[@]}"; do
    if [ "$stage" = "$requested" ]; then
      "stage_${stage}" || true
      break
    fi
  done
done

echo
echo "=== summary ==="
printf '%-10s %s\n' stage result
printf '%-10s %s\n' ----- ------
passes=0
skips=0
failures=0
for i in "${!STAGE_NAMES[@]}"; do
  printf '%-10s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
  case "${STAGE_RESULTS[$i]}" in
    PASS) passes=$((passes + 1)) ;;
    SKIP) skips=$((skips + 1)) ;;
    FAIL) failures=$((failures + 1)) ;;
  esac
done
echo "=== $passes passed, $skips skipped, $failures failed ==="
if [ "$failures" -gt 0 ]; then
  echo "=== $failures stage(s) FAILED ==="
  exit 1
fi
if [ "$NO_SKIP" -eq 1 ] && [ "$skips" -gt 0 ]; then
  echo "=== --no-skip: $skips skipped stage(s) treated as failure ==="
  exit 1
fi
if [ "$skips" -gt 0 ]; then
  echo "=== all runnable stages passed ($skips skipped) ==="
else
  echo "=== all requested stages passed ==="
fi
