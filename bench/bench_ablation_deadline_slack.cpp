// Ablation A5 — deadline slack. The paper quotes tight deadlines
// (d = s* + Ej): any failure that costs more time than the skippable
// checkpoints almost certainly breaks the promise. Padding quotes with
// slack trades later deadlines for more kept promises; this bench sweeps
// the padding factor to show that trade-off.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A5: deadline slack factor sweep (SDSC, "
                    "a = 0.5, U = 0.9)",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  Table table({"slack factor", "QoS", "deadline-met rate",
               "mean wait (s)", "ckpts skipped"});
  for (const double slack : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.accuracy = 0.5;
    config.userRisk = 0.9;
    config.deadlineSlack = slack;
    const auto result = core::runSimulation(config, inputs.jobs, inputs.trace);
    table.addRow({formatFixed(slack, 2), formatFixed(result.qos, 4),
                  formatFixed(result.deadlineRate(), 4),
                  formatFixed(result.meanWaitTime, 0),
                  std::to_string(result.checkpointsSkipped)});
  }
  return emit(table, options,
              "Ablation A5. Deadline slack (SDSC, a=0.5, U=0.9).")
             ? 0
             : 1;
}
