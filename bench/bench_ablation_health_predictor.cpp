// Ablation A10 — the full health-monitoring pipeline (paper §3.1-3.2) as
// the predictor: precursor-pattern alarms with live precision/recall,
// against the idealized trace-replay oracle at Sahoo et al.'s reported
// ~0.7 accuracy and against the no-forecasting baseline. Unlike the
// oracle, the pattern predictor is fully causal and makes both false
// positives and false negatives.
#include <algorithm>

#include "core/simulator.hpp"
#include "failure/generator.hpp"
#include "harness.hpp"
#include "health/pattern_predictor.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A10: health-monitoring pattern predictor vs "
                    "trace-replay oracle (SDSC, U = 0.9)",
                    options)) {
    return 0;
  }
  const auto model = workload::modelByName("sdsc", options.machineSize);
  const auto jobs = workload::generate(model, options.jobs, options.seed);
  double totalWork = 0.0;
  double maxRuntime = 0.0;
  for (const auto& job : jobs) {
    totalWork += job.totalWork();
    maxRuntime = std::max(maxRuntime, job.work);
  }
  const Duration span =
      3.0 * totalWork /
          (static_cast<double>(options.machineSize) * model.targetLoad) +
      10.0 * maxRuntime + 30.0 * kDay;
  const auto traces = failure::makeCalibratedTraces(
      options.machineSize, span, 1021.0, options.seed ^ 0xf417);

  Table table({"predictor", "QoS", "utilization", "lost work (node-s)",
               "restarts", "recall", "precision"});
  const auto addRow = [&](const std::string& name,
                          const core::SimResult& result, double recall,
                          double precision) {
    table.addRow({name, formatFixed(result.qos, 4),
                  formatFixed(result.utilization, 4),
                  formatFixed(result.lostWork, 0),
                  std::to_string(result.totalRestarts),
                  recall < 0.0 ? "-" : formatFixed(recall, 3),
                  precision < 0.0 ? "-" : formatFixed(precision, 3)});
  };

  for (const double a : {0.0, 0.7}) {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.accuracy = a;
    config.userRisk = 0.9;
    addRow("oracle a=" + formatFixed(a, 1),
           core::runSimulation(config, jobs, traces.filtered), a, 1.0);
  }
  {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.userRisk = 0.9;
    const core::Simulator* simRef = nullptr;
    health::PatternPredictor predictor(
        options.machineSize, traces.raw,
        [&simRef] { return simRef ? simRef->now() : 0.0; });
    core::Simulator sim(config, jobs, traces.filtered, &predictor);
    simRef = &sim;
    const auto result = sim.run();
    const auto& stats = predictor.monitor().stats();
    addRow("health pipeline (pattern alarms)", result, stats.recall(),
           stats.precision());
  }
  return emit(table, options,
              "Ablation A10. Health-monitoring pattern prediction vs the "
              "idealized oracle (SDSC, U = 0.9). Sahoo et al. report ~70% of "
              "failures predictable from precursor patterns.")
             ? 0
             : 1;
}
