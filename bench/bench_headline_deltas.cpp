// Reproduces the paper's Section 5/6 headline comparisons:
//   * a = 1 vs a = 0 (no forecasting), U = 0.9: QoS and utilization
//     improve by up to ~6%, lost work drops by ~89% (factor ~9);
//   * U = 0.9 vs U = 0.1 at a = 1: QoS +~4%, utilization +~3%, lost work
//     divided by ~9.
#include "harness.hpp"
#include "util/strings.hpp"

namespace {

using pqos::bench::HarnessOptions;

void compare(pqos::Table& table, const std::string& label,
             const pqos::core::SimResult& base,
             const pqos::core::SimResult& better) {
  const double qosDelta = better.qos - base.qos;
  const double utilDelta = better.utilization - base.utilization;
  const double lostRatio =
      better.lostWork > 0.0 ? base.lostWork / better.lostWork : 0.0;
  const double lostReduction =
      base.lostWork > 0.0
          ? 100.0 * (base.lostWork - better.lostWork) / base.lostWork
          : 0.0;
  // Build each cell with append rather than operator+ chains: GCC 12's
  // -Wrestrict misfires on char*+string concatenation at -O2 (PR105329),
  // which would break the -Werror wall.
  std::string qosCell = pqos::formatFixed(100.0 * qosDelta, 2);
  qosCell += '%';
  std::string utilCell = pqos::formatFixed(100.0 * utilDelta, 2);
  utilCell += '%';
  std::string lostCell = pqos::formatFixed(lostReduction, 1);
  lostCell += '%';
  std::string ratioCell = "x";
  ratioCell += pqos::formatFixed(lostRatio, 1);
  table.addRow({label, qosCell, utilCell, lostCell, ratioCell});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Headline deltas of the paper's Sections 5-6: "
                    "forecasting (a) and user risk aversion (U) improvements",
                    options)) {
    return 0;
  }

  Table table({"comparison", "dQoS", "dUtil", "lost-work reduction",
               "lost-work factor"});
  for (const std::string model : {"sdsc", "nasa"}) {
    const auto inputs = core::makeStandardInputs(model, options.jobs,
                                                 options.seed,
                                                 options.machineSize);
    core::SimConfig config;
    config.machineSize = options.machineSize;

    config.userRisk = 0.9;
    config.accuracy = 0.0;
    const auto blind = core::runSimulation(config, inputs.jobs, inputs.trace);
    config.accuracy = 1.0;
    const auto sharp = core::runSimulation(config, inputs.jobs, inputs.trace);
    compare(table, model + ": a 0 -> 1 (U=0.9)", blind, sharp);

    config.accuracy = 1.0;
    config.userRisk = 0.1;
    const auto daring = core::runSimulation(config, inputs.jobs, inputs.trace);
    compare(table, model + ": U 0.1 -> 0.9 (a=1)", daring, sharp);
  }
  return emit(table, options,
              "Headline improvements (paper: up to +6% QoS/util and ~89% "
              "less lost work from forecasting; +4% QoS, +3% util, ~9x less "
              "lost work from risk-averse users).")
             ? 0
             : 1;
}
