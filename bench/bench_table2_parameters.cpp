// Reproduces the paper's Table 2: simulation parameters, plus the failure
// trace statistics those parameters imply (the paper's AIX trace: 1021
// failures/year on 128 nodes, cluster MTBF 8.5 h, ~2.8/day).
#include "failure/generator.hpp"
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Table 2: simulation parameters (N, C, I, a, U, downtime) "
                    "and the calibrated failure-trace statistics",
                    options)) {
    return 0;
  }
  core::SimConfig config;
  config.machineSize = options.machineSize;

  Table table({"N (nodes)", "C (s)", "I (s)", "a", "U", "downtime (s)"});
  table.addRow({std::to_string(config.machineSize),
                formatFixed(config.checkpointOverhead, 0),
                formatFixed(config.checkpointInterval, 0), "[0,1]", "[0,1]",
                formatFixed(config.downtime, 0)});
  if (!emit(table, options,
            "Table 2. Simulation parameters. Workloads and failure behavior "
            "were generated from calibrated trace models.")) {
    return 1;
  }

  const auto trace = failure::makeCalibratedTrace(
      config.machineSize, kYear, 1021.0, options.seed);
  const auto stats = trace.stats();
  Table traceTable({"failures/year", "cluster MTBF (h)", "failures/day",
                    "interarrival CV", "hot-node share", "paper"});
  traceTable.addRow({std::to_string(stats.count),
                     formatFixed(stats.clusterMtbf / kHour, 2),
                     formatFixed(stats.failuresPerDay, 2),
                     formatFixed(stats.interarrivalCv, 2),
                     formatFixed(stats.hotNodeShare, 2),
                     "1021 / 8.5 h / 2.8 per day"});
  HarnessOptions quiet = options;
  quiet.csvPath.clear();  // CSV (if requested) carries the parameter table
  return emit(traceTable, quiet, "Calibrated failure trace statistics.")
             ? 0
             : 1;
}
