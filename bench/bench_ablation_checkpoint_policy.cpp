// Ablation A1 — checkpoint policy. Compares, at several accuracies:
//   periodic     perform every requested checkpoint,
//   never        no checkpoints at all,
//   risk         literal Eq. 1 (pf = 0 skips; degenerates to `never`
//                under a blind predictor),
//   cooperative  Eq. 1 with the confidence-scaled blind prior plus
//                deadline rescue (the paper's system).
// This is the experiment behind the interpretation note in EXPERIMENTS.md:
// only `cooperative` matches both the paper's a = 0 lost-work magnitude
// and its utilization gain at high accuracy.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A1: checkpoint policies (periodic | never | "
                    "risk | cooperative) across prediction accuracies, SDSC",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  Table table({"policy", "a", "QoS", "utilization", "lost work (node-s)",
               "ckpts performed", "ckpts skipped"});
  for (const std::string policy : {"periodic", "never", "risk",
                                   "cooperative"}) {
    for (const double a : {0.0, 0.5, 1.0}) {
      core::SimConfig config;
      config.machineSize = options.machineSize;
      config.checkpointPolicy = policy;
      config.accuracy = a;
      config.userRisk = 0.9;
      const auto result =
          core::runSimulation(config, inputs.jobs, inputs.trace);
      table.addRow({policy, formatFixed(a, 1), formatFixed(result.qos, 4),
                    formatFixed(result.utilization, 4),
                    formatFixed(result.lostWork, 0),
                    std::to_string(result.checkpointsPerformed),
                    std::to_string(result.checkpointsSkipped)});
    }
  }
  return emit(table, options,
              "Ablation A1. Checkpoint policy comparison (SDSC).")
             ? 0
             : 1;
}
