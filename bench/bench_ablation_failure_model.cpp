// Ablation A4 — failure model realism. The paper stresses that "typical
// statistical failure models are poor indicators of actual system
// behavior" and therefore replays a real (bursty, spatially skewed)
// trace. This bench runs the same experiment against:
//   filtered-mmpp  our calibrated raw-event + filtering pipeline
//                  (bursty, hot nodes — the paper-like trace),
//   weibull        per-node Weibull renewals (shape < 1, bursty in time
//                  but spatially uniform),
//   poisson        homogeneous Poisson (memoryless, uniform).
// All three are calibrated to the same cluster MTBF (8.5 h).
#include "failure/generator.hpp"
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A4: failure models (filtered-mmpp | weibull | "
                    "poisson) at matched MTBF, SDSC",
                    options)) {
    return 0;
  }
  const auto model = workload::modelByName("sdsc", options.machineSize);
  const auto jobs = workload::generate(model, options.jobs, options.seed);
  double totalWork = 0.0;
  for (const auto& job : jobs) totalWork += job.totalWork();
  const Duration span =
      3.0 * totalWork /
          (static_cast<double>(options.machineSize) * model.targetLoad) +
      60.0 * kDay;
  const Duration mtbf = 8.5 * kHour;

  struct NamedTrace {
    std::string name;
    failure::FailureTrace trace;
  };
  std::vector<NamedTrace> traces;
  traces.push_back({"filtered-mmpp",
                    failure::makeCalibratedTrace(options.machineSize, span,
                                                 kYear / mtbf, options.seed)});
  traces.push_back(
      {"weibull", failure::FailureTrace(
                      failure::generateWeibullFailures(
                          options.machineSize, span, mtbf, 0.6, options.seed),
                      options.machineSize)});
  traces.push_back(
      {"poisson", failure::FailureTrace(
                      failure::generatePoissonFailures(
                          options.machineSize, span, mtbf, options.seed),
                      options.machineSize)});

  Table table({"failure model", "a", "QoS", "lost work (node-s)",
               "restarts", "interarrival CV", "hot-node share"});
  for (const auto& named : traces) {
    const auto stats = named.trace.stats();
    for (const double a : {0.0, 1.0}) {
      core::SimConfig config;
      config.machineSize = options.machineSize;
      config.accuracy = a;
      config.userRisk = 0.9;
      const auto result = core::runSimulation(config, jobs, named.trace);
      table.addRow({named.name, formatFixed(a, 1), formatFixed(result.qos, 4),
                    formatFixed(result.lostWork, 0),
                    std::to_string(result.totalRestarts),
                    formatFixed(stats.interarrivalCv, 2),
                    formatFixed(stats.hotNodeShare, 2)});
    }
  }
  return emit(table, options,
              "Ablation A4. Failure-model comparison at matched cluster MTBF "
              "(SDSC workload).")
             ? 0
             : 1;
}
