// Reproduces the paper's Figure 7: QoS vs. user behavior (U) on the SDSC
// log at a = 0.5 — illustrating the plateau where the user parameter is
// inert because no quote's failure probability can trigger the risk rule.
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runUserFigure(argc, argv, "Figure 7", "sdsc",
                                    pqos::bench::Metric::Qos, 0.5);
}
