// Ablation A7 — dynamic schedule re-optimization after failures. The
// paper disables it ("jobs that have already been scheduled for later
// execution retain their scheduled partition; there is no dynamic
// optimization of the schedule following a failure") while noting it "may
// be desirable". This bench turns the repacking window on and measures
// what the paper left as future work.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A7: dynamic re-planning window after failures "
                    "(0 = paper), SDSC, a = 0.5, U = 0.9",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  Table table({"replan window", "QoS", "utilization", "lost work (node-s)",
               "mean wait (s)", "deadline-met rate"});
  for (const int window : {0, 8, 32, 128}) {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.accuracy = 0.5;
    config.userRisk = 0.9;
    config.dynamicReplanWindow = window;
    const auto result = core::runSimulation(config, inputs.jobs, inputs.trace);
    table.addRow({std::to_string(window), formatFixed(result.qos, 4),
                  formatFixed(result.utilization, 4),
                  formatFixed(result.lostWork, 0),
                  formatFixed(result.meanWaitTime, 0),
                  formatFixed(result.deadlineRate(), 4)});
  }
  return emit(table, options,
              "Ablation A7. Dynamic re-planning after failures (paper future "
              "work; window 0 reproduces the paper's static schedule).")
             ? 0
             : 1;
}
