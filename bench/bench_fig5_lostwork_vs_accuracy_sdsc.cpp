// Reproduces the paper's Figure 5: lost-work vs. prediction accuracy
// on the sdsc log (flat cluster, U = 0.1, 0.5, 0.9).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runAccuracyFigure(argc, argv, "Figure 5", "sdsc",
                                        pqos::bench::Metric::LostWork);
}
