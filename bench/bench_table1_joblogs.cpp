// Reproduces the paper's Table 1: job log characteristics of the two
// (synthesized) workloads, next to the values the paper reports for the
// real archive logs.
#include "harness.hpp"
#include "util/strings.hpp"
#include "workload/workload_stats.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Table 1: job log characteristics (paper targets: NASA "
                    "avg nj 6.3, avg ej 381 s, max ej 12 h; SDSC avg nj 9.7, "
                    "avg ej 7722 s, max ej 132 h)",
                    options)) {
    return 0;
  }

  struct PaperRow {
    const char* name;
    double avgNodes;
    double avgRuntime;
    double maxRuntimeHours;
  };
  const PaperRow paper[] = {
      {"nasa", 6.3, 381.0, 12.0},
      {"sdsc", 9.7, 7722.0, 132.0},
  };

  Table table({"Job Log", "Avg nj (nodes)", "Avg ej (s)", "Max ej (hr)",
               "paper Avg nj", "paper Avg ej", "paper Max ej"});
  for (const auto& row : paper) {
    const auto model = workload::modelByName(row.name, options.machineSize);
    const auto jobs = workload::generate(model, options.jobs, options.seed);
    const auto stats = workload::computeStats(jobs, options.machineSize);
    table.addRow({row.name, formatFixed(stats.avgNodes, 1),
                  formatFixed(stats.avgRuntime, 0),
                  formatFixed(stats.maxRuntime / kHour, 0),
                  formatFixed(row.avgNodes, 1), formatFixed(row.avgRuntime, 0),
                  formatFixed(row.maxRuntimeHours, 0)});
  }
  return emit(table, options, "Table 1. Job log characteristics.") ? 0 : 1;
}
