// Microbenchmarks (google-benchmark): the hot paths of the simulator —
// event queue operations, trace-predictor window queries, reservation-book
// slot searches, and a complete small simulation.
#include <benchmark/benchmark.h>

#include "cluster/topology.hpp"
#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "failure/generator.hpp"
#include "predict/trace_predictor.hpp"
#include "sched/reservation_book.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  pqos::Rng rng(1);
  std::vector<double> times(count);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    pqos::sim::EventQueue queue;
    for (const double t : times) {
      queue.schedule(t, [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_EventQueueCancellation(benchmark::State& state) {
  for (auto _ : state) {
    pqos::sim::EventQueue queue;
    std::vector<pqos::sim::EventId> ids;
    ids.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      ids.push_back(queue.schedule(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) queue.cancel(ids[i]);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_EventQueueCancellation);

void BM_PredictorPartitionQuery(benchmark::State& state) {
  const auto trace =
      pqos::failure::makeCalibratedTrace(128, 2.0 * pqos::kYear, 1021.0, 7);
  const pqos::predict::TracePredictor predictor(trace, 0.5);
  std::vector<pqos::NodeId> partition;
  for (pqos::NodeId n = 0; n < 16; ++n) partition.push_back(n * 8);
  double t = 0.0;
  for (auto _ : state) {
    t += 3600.0;
    if (t > pqos::kYear) t = 0.0;
    benchmark::DoNotOptimize(
        predictor.partitionFailureProbability(partition, t, t + 7200.0));
  }
}
BENCHMARK(BM_PredictorPartitionQuery);

void BM_ReservationBookFindSlot(benchmark::State& state) {
  const pqos::cluster::FlatTopology flat;
  pqos::sched::ReservationBook book(128);
  pqos::Rng rng(3);
  // A realistic mid-simulation book: ~80 committed jobs.
  for (pqos::JobId j = 0; j < 80; ++j) {
    const int size = static_cast<int>(rng.uniformInt(1, 16));
    const double start = rng.uniform(0.0, 50000.0);
    const double duration = rng.uniform(600.0, 20000.0);
    const auto slot = book.findSlot(
        start, size, duration, flat, [](pqos::SimTime, pqos::SimTime) {
          return [](pqos::NodeId) { return 0.0; };
        });
    book.reserve(j, slot->partition, slot->start, slot->start + duration);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(book.findSlot(
        0.0, 12, 7200.0, flat, [](pqos::SimTime, pqos::SimTime) {
          return [](pqos::NodeId) { return 0.0; };
        }));
  }
}
BENCHMARK(BM_ReservationBookFindSlot);

void BM_FullSimulation(benchmark::State& state) {
  const auto inputs = pqos::core::makeStandardInputs(
      "nasa", static_cast<std::size_t>(state.range(0)), 11);
  pqos::core::SimConfig config;
  config.accuracy = 0.5;
  config.userRisk = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pqos::core::runSimulation(config, inputs.jobs, inputs.trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FullSimulation)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
