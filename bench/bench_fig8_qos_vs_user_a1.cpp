// Reproduces the paper's Figure 8: QoS vs. user behavior (U) for BOTH the
// SDSC and NASA logs on a flat cluster at a = 1. Higher U (more
// risk-averse users) should yield better QoS on both logs.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Figure 8: QoS vs user behavior (U), SDSC and NASA "
                    "logs, flat cluster, a = 1",
                    options)) {
    return 0;
  }
  const auto risks = core::canonicalGrid();
  const std::vector<double> accuracies{1.0};
  core::SimConfig base;
  base.machineSize = options.machineSize;

  Table table({"User Parameter (U)", "QoS (SDSC)", "QoS (NASA)"});
  std::vector<std::vector<core::SweepPoint>> byModel;
  for (const std::string model : {"sdsc", "nasa"}) {
    const auto inputs = core::makeStandardInputs(model, options.jobs,
                                                 options.seed,
                                                 options.machineSize);
    byModel.push_back(core::sweep(base, inputs, accuracies, risks));
  }
  for (std::size_t i = 0; i < risks.size(); ++i) {
    table.addRow({formatFixed(risks[i], 1),
                  formatFixed(byModel[0][i].result.qos, 4),
                  formatFixed(byModel[1][i].result.qos, 4)});
  }
  return emit(table, options,
              "Figure 8. QoS vs. user behavior, flat cluster, a = 1.")
             ? 0
             : 1;
}
