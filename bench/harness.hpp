// Shared scaffolding for the per-figure benchmark harnesses.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace pqos::bench {

/// Standard flags every figure harness accepts.
struct HarnessOptions {
  std::size_t jobs = 10000;
  std::uint64_t seed = 42;
  std::string csvPath;  // empty = no CSV export
  int machineSize = 128;
};

/// Parses the standard flags; returns false when --help was requested.
[[nodiscard]] bool parseHarness(int argc, const char* const* argv,
                                const std::string& description,
                                HarnessOptions& options);

/// Prints the table, writes the optional CSV, and echoes a provenance line.
void emit(const Table& table, const HarnessOptions& options,
          const std::string& title);

/// Extracts one metric series per userRisk from a sweep, with accuracies
/// as rows — the layout of the paper's accuracy figures.
enum class Metric { Qos, Utilization, LostWork };
[[nodiscard]] double metricOf(const core::SimResult& result, Metric metric);
[[nodiscard]] const char* metricName(Metric metric);

[[nodiscard]] Table accuracySweepTable(
    const std::vector<core::SweepPoint>& points,
    const std::vector<double>& accuracies, const std::vector<double>& userRisks,
    Metric metric);

[[nodiscard]] Table userSweepTable(const std::vector<core::SweepPoint>& points,
                                   const std::vector<double>& userRisks,
                                   Metric metric, const std::string& seriesName);

/// Complete main() body for a "metric vs accuracy" figure (paper Figs 1-6):
/// sweeps a = 0..1 at U in {0.1, 0.5, 0.9} over one workload model.
int runAccuracyFigure(int argc, const char* const* argv,
                      const std::string& figure, const std::string& model,
                      Metric metric);

/// Complete main() body for a "metric vs user parameter" figure (paper
/// Figs 7, 9-12): sweeps U = 0..1 at a fixed accuracy over one model.
int runUserFigure(int argc, const char* const* argv, const std::string& figure,
                  const std::string& model, Metric metric, double accuracy);

}  // namespace pqos::bench
