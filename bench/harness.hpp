// Shared scaffolding for the per-figure benchmark harnesses.
//
// Every figure binary accepts --threads N (parallel sweep workers; 0 = one
// per hardware thread) and --reps K (seed-derived replicas per grid point;
// K > 1 renders cells as "mean+-ci95"), riding on the pqos::runner
// subsystem — so all figures gain parallelism, error bars, and the JSON
// results sink without per-bench changes.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "runner/sweep_runner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace pqos::bench {

/// Standard flags every figure harness accepts.
struct HarnessOptions {
  std::size_t jobs = 10000;
  std::uint64_t seed = 42;
  std::string csvPath;     // empty = no CSV export of the printed table
  std::string jsonPath;    // empty = no machine-readable JSON results
  std::string rawCsvPath;  // empty = no per-replica raw-metrics CSV
  int machineSize = 128;
  std::size_t threads = 0;  // sweep workers; 0 = all hardware threads
  std::size_t reps = 1;     // replicas per grid point
  bool progress = false;    // stream per-point progress to stderr

  // --- Crash tolerance (--journal / --resume / --retries / ...) ---
  std::string journalPath;       // append-only sweep journal; "" = none
  bool resume = false;           // replay the journal, skip finished cells
  std::size_t retries = 0;       // extra attempts per failed cell
  double cellTimeout = 0.0;      // seconds before the watchdog fails a cell
  std::string failpoints;        // site=action[,site=action...] to arm

  // --- Sweep fabric (--shard i/N / --lease-dir; see src/fabric/) ---
  std::string shard;     // "i/N" static shard of the cell grid; "" = all
  std::string leaseDir;  // shared claims directory enabling work stealing
};

/// Parses the standard flags; returns false when --help was requested.
[[nodiscard]] bool parseHarness(int argc, const char* const* argv,
                                const std::string& description,
                                HarnessOptions& options);

/// Prints the table and writes the optional CSV (creating parent
/// directories as needed). Returns false — after reporting to stderr —
/// when an output file cannot be written, so callers exit nonzero.
[[nodiscard]] bool emit(const Table& table, const HarnessOptions& options,
                        const std::string& title);

/// As above, but also inspects the sweep's degradation report: a partial
/// run (some sink or the journal quarantined) prints the casualty list to
/// stderr and returns false so the binary exits nonzero even though the
/// table itself printed.
[[nodiscard]] bool emit(const Table& table, const HarnessOptions& options,
                        const std::string& title,
                        const runner::SweepResult& sweep);

/// Runs the (accuracy x userRisk) sweep described by the options through
/// the parallel runner, wiring up the progress/JSON sinks the flags ask
/// for.
[[nodiscard]] runner::SweepResult runHarnessSweep(
    const HarnessOptions& options, const std::string& model,
    std::vector<double> accuracies, std::vector<double> userRisks,
    const std::string& title);

/// Extracts one metric series per userRisk from a sweep, with accuracies
/// as rows — the layout of the paper's accuracy figures.
enum class Metric { Qos, Utilization, LostWork };
[[nodiscard]] double metricOf(const core::SimResult& result, Metric metric);
[[nodiscard]] const char* metricName(Metric metric);

[[nodiscard]] Table accuracySweepTable(
    const std::vector<core::SweepPoint>& points,
    const std::vector<double>& accuracies, const std::vector<double>& userRisks,
    Metric metric);

[[nodiscard]] Table userSweepTable(const std::vector<core::SweepPoint>& points,
                                   const std::vector<double>& userRisks,
                                   Metric metric, const std::string& seriesName);

/// Replicated variants: single-rep sweeps render plain values, multi-rep
/// sweeps render "mean+-ci95" per cell.
[[nodiscard]] Table accuracySweepTable(const runner::SweepResult& sweep,
                                       Metric metric);

[[nodiscard]] Table userSweepTable(const runner::SweepResult& sweep,
                                   Metric metric,
                                   const std::string& seriesName);

/// Complete main() body for a "metric vs accuracy" figure (paper Figs 1-6):
/// sweeps a = 0..1 at U in {0.1, 0.5, 0.9} over one workload model.
int runAccuracyFigure(int argc, const char* const* argv,
                      const std::string& figure, const std::string& model,
                      Metric metric);

/// Complete main() body for a "metric vs user parameter" figure (paper
/// Figs 7, 9-12): sweeps U = 0..1 at a fixed accuracy over one model.
int runUserFigure(int argc, const char* const* argv, const std::string& figure,
                  const std::string& model, Metric metric, double accuracy);

}  // namespace pqos::bench
