// Ablation A2 — the two readings of the paper's Eq. 3 user rule (see
// DESIGN.md interpretation note):
//   success-floor      accept the earliest quote with 1 - pf >= U
//                      (plateau while a <= 1 - U),
//   failure-tolerance  accept the earliest quote with pf <= U
//                      (plateau while a <= U).
// Both are swept over U at a = 0.5 on the SDSC log, which is exactly the
// paper's Figure 7 setting; the two plateaus are mirror images.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A2: Eq. 3 risk-rule semantics, QoS vs U at "
                    "a = 0.5, SDSC",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  const auto risks = core::canonicalGrid();
  Table table({"U", "QoS (success-floor)", "QoS (failure-tolerance)"});
  std::vector<std::vector<double>> columns;
  for (const auto semantics :
       {core::RiskSemantics::SuccessFloor,
        core::RiskSemantics::FailureTolerance}) {
    std::vector<double> column;
    for (const double u : risks) {
      core::SimConfig config;
      config.machineSize = options.machineSize;
      config.accuracy = 0.5;
      config.userRisk = u;
      config.semantics = semantics;
      column.push_back(
          core::runSimulation(config, inputs.jobs, inputs.trace).qos);
    }
    columns.push_back(std::move(column));
  }
  for (std::size_t i = 0; i < risks.size(); ++i) {
    table.addRow({formatFixed(risks[i], 1), formatFixed(columns[0][i], 4),
                  formatFixed(columns[1][i], 4)});
  }
  return emit(table, options,
                  "Ablation A2. User-rule semantics at a = 0.5 "
                  "(Figure 7 setting).")
             ? 0
             : 1;
}
