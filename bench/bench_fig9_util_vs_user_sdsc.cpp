// Reproduces the paper's Figure 9: utilization vs. user behavior (U)
// on the sdsc log (flat cluster, a = 1).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runUserFigure(argc, argv, "Figure 9", "sdsc",
                                    pqos::bench::Metric::Utilization, 1.0);
}
