#include "harness.hpp"

#include <iostream>
#include <optional>

#include "fabric/fabric.hpp"
#include "fabric/lease.hpp"
#include "failpoint/failpoint.hpp"
#include "metrics/metrics.hpp"
#include "runner/provenance.hpp"
#include "runner/result_sink.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace pqos::bench {

namespace {
/// Bench wall-time start, on the metrics monotonic clock. parseHarness is
/// the first harness call in every bench main(), so the delta at emit()
/// time is the whole run, flag parsing included.
double g_startSeconds = 0.0;
}  // namespace

bool parseHarness(int argc, const char* const* argv,
                  const std::string& description, HarnessOptions& options) {
  g_startSeconds = metrics::nowSeconds();
  ArgParser args(description);
  args.addInt("jobs", static_cast<long long>(options.jobs),
              "jobs to replay (paper: 10000)");
  args.addInt("seed", static_cast<long long>(options.seed),
              "seed for the synthetic workload and failure trace");
  args.addString("csv", "", "optional path for CSV export of the table");
  args.addString("json", "",
                 "optional path for machine-readable JSON results "
                 "(pqos-sweep-v1, full provenance)");
  args.addString("raw-csv", "",
                 "optional path for a per-replica raw-metrics CSV");
  args.addInt("machine", options.machineSize,
              "cluster size in nodes (paper: 128)");
  args.addInt("threads", static_cast<long long>(options.threads),
              "parallel sweep workers (0 = one per hardware thread)");
  args.addInt("reps", static_cast<long long>(options.reps),
              "seed-derived replicas per grid point; >1 adds 95% CIs");
  args.addBool("progress", options.progress,
               "stream per-point progress to stderr");
  args.addString("journal", "",
                 "append-only sweep journal (pqos-journal-v1); completed "
                 "cells survive a crash");
  args.addBool("resume", options.resume,
               "replay --journal and skip already-completed cells");
  args.addInt("retries", static_cast<long long>(options.retries),
              "extra attempts per failed cell (exponential backoff)");
  args.addDouble("cell-timeout", options.cellTimeout,
                 "seconds before the watchdog fails a running cell "
                 "(0 = never)");
  args.addString("failpoints", "",
                 "fault-injection sites to arm, site=action[;...]; see "
                 "example_dump_trace --list-failpoints");
  args.addString("shard", "",
                 "run only shard i/N of the sweep grid (e.g. 0/4); merge "
                 "the per-shard --json files with example_sweep_merge");
  args.addString("lease-dir", "",
                 "shared cell-claims directory for a sharded fleet; "
                 "enables cross-worker work stealing (requires --shard)");
  if (!args.parse(argc, argv)) return false;
  options.jobs = static_cast<std::size_t>(args.getInt("jobs"));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  options.csvPath = args.getString("csv");
  options.jsonPath = args.getString("json");
  options.rawCsvPath = args.getString("raw-csv");
  options.machineSize = static_cast<int>(args.getInt("machine"));
  options.threads = static_cast<std::size_t>(args.getInt("threads"));
  options.reps = static_cast<std::size_t>(args.getInt("reps"));
  if (options.reps == 0) options.reps = 1;
  options.progress = args.getBool("progress");
  options.journalPath = args.getString("journal");
  options.resume = args.getBool("resume");
  options.retries = static_cast<std::size_t>(args.getInt("retries"));
  options.cellTimeout = args.getDouble("cell-timeout");
  options.failpoints = args.getString("failpoints");
  options.shard = args.getString("shard");
  options.leaseDir = args.getString("lease-dir");
  return true;
}

namespace {

/// Machine-readable results for benches that are not sweeps (ablations,
/// tables): schema pqos-bench-v1 — the same provenance header as the
/// sweep sink, the printed table as raw cells, the run's wall time on the
/// metrics monotonic clock, and (in metrics-enabled builds) the
/// pqos-perf-v1 block so example_perf_report can read bench output too.
void writeBenchJson(const Table& table, const HarnessOptions& options,
                    const std::string& title) {
  const double wallSeconds = metrics::nowSeconds() - g_startSeconds;
  runner::writeFileWithParents(options.jsonPath, [&](std::ostream& os) {
    JsonWriter json(os);
    json.beginObject();
    json.field("schema", "pqos-bench-v1");
    json.field("title", title);
    json.field("gitDescribe", runner::gitDescribe());
    json.field("buildType", runner::buildType());
    json.field("compiler", runner::compilerId());
    json.field("wallSeconds", wallSeconds);
    json.field("jobs", static_cast<std::uint64_t>(options.jobs));
    json.field("seed", options.seed);
    json.field("machineSize", options.machineSize);
    json.key("table").beginObject();
    json.key("header").beginArray();
    for (const auto& cell : table.header()) json.value(cell);
    json.endArray();
    json.key("rows").beginArray();
    for (const auto& row : table.rows()) {
      json.beginArray();
      for (const auto& cell : row) json.value(cell);
      json.endArray();
    }
    json.endArray();
    json.endObject();
    if constexpr (metrics::kCompiled) {
      json.key("perf");
      metrics::writePerfJson(json, metrics::snapshot(), wallSeconds);
    }
    json.endObject();
    os << '\n';
  });
}

/// Shared emit body. `jsonWrittenBySink` distinguishes sweep benches
/// (the runner's JsonResultSink already exported pqos-sweep-v1; only
/// announce it) from plain benches (write pqos-bench-v1 here).
bool emitImpl(const Table& table, const HarnessOptions& options,
              const std::string& title, bool jsonWrittenBySink) {
  std::cout << title << "\n(jobs=" << options.jobs
            << ", seed=" << options.seed
            << ", machine=" << options.machineSize
            << ", reps=" << options.reps << ")\n\n";
  table.print(std::cout);
  if (!options.csvPath.empty()) {
    try {
      runner::writeFileWithParents(
          options.csvPath, [&](std::ostream& os) { table.writeCsv(os); });
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return false;
    }
    std::cout << "\nCSV written to " << options.csvPath << '\n';
  }
  if (!options.jsonPath.empty()) {
    if (!jsonWrittenBySink) {
      try {
        writeBenchJson(table, options, title);
      } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return false;
      }
    }
    std::cout << "JSON results written to " << options.jsonPath << '\n';
  }
  if (!options.rawCsvPath.empty()) {
    if (jsonWrittenBySink) {
      std::cout << "Raw per-replica CSV written to " << options.rawCsvPath
                << '\n';
    } else {
      // Only sweeps have replicas; a plain bench has nothing to export.
      std::cerr << "warning: --raw-csv ignored (not a sweep bench)\n";
    }
  }
  std::cout << std::endl;
  return true;
}

}  // namespace

bool emit(const Table& table, const HarnessOptions& options,
          const std::string& title) {
  return emitImpl(table, options, title, /*jsonWrittenBySink=*/false);
}

bool emit(const Table& table, const HarnessOptions& options,
          const std::string& title, const runner::SweepResult& sweep) {
  const bool wrote = emitImpl(table, options, title,
                              /*jsonWrittenBySink=*/true);
  if (!sweep.partial()) return wrote;
  std::cerr << "warning: sweep output is partial; quarantined sink(s):\n";
  for (const auto& name : sweep.quarantinedSinks) {
    std::cerr << "  " << name << '\n';
  }
  return false;
}

runner::SweepResult runHarnessSweep(const HarnessOptions& options,
                                    const std::string& model,
                                    std::vector<double> accuracies,
                                    std::vector<double> userRisks,
                                    const std::string& title) {
  runner::SweepSpec spec;
  spec.model = model;
  spec.jobCount = options.jobs;
  spec.seed = options.seed;
  spec.machineSize = options.machineSize;
  spec.base.machineSize = options.machineSize;
  spec.accuracies = std::move(accuracies);
  spec.userRisks = std::move(userRisks);
  spec.title = title;

  runner::RunnerOptions runOptions;
  runOptions.threads = options.threads;
  runOptions.reps = options.reps;
  runOptions.journalPath = options.journalPath;
  runOptions.resume = options.resume;
  runOptions.maxRetries = options.retries;
  runOptions.cellTimeoutSeconds = options.cellTimeout;

  // Fabric sharding: --shard i/N restricts this process to its static
  // slice of the grid; adding --lease-dir lets it also steal cells whose
  // owner died (the arbiter must outlive run(), hence the optional
  // below). The JSON sink switches to the per-shard "cells" layout that
  // example_sweep_merge folds back together.
  const fabric::ShardSpec shardSpec = fabric::parseShardSpec(options.shard);
  runOptions.shardIndex = shardSpec.index;
  runOptions.shardCount = shardSpec.count;
  std::optional<fabric::LeaseArbiter> arbiter;
  if (!options.leaseDir.empty()) {
    if (shardSpec.count <= 1) {
      throw ConfigError("--lease-dir requires --shard i/N with N > 1");
    }
    fabric::LeaseArbiter::Options leaseOptions;
    leaseOptions.dir = options.leaseDir;
    leaseOptions.specDigest = runner::sweepSpecDigest(spec, runOptions.reps);
    leaseOptions.shard = shardSpec.index;
    leaseOptions.journalPath = options.journalPath;
    arbiter.emplace(std::move(leaseOptions));
    runOptions.arbiter = &*arbiter;
  }

  // Arm fault injection before anything can fail: the environment first
  // (chaos drivers set PQOS_FAILPOINTS on child processes), then the
  // explicit flag, which wins on conflicting sites.
  failpoint::armFromEnv();
  if (!options.failpoints.empty()) {
    failpoint::armFromSpec(options.failpoints);
  }

  runner::SweepRunner sweepRunner(std::move(spec), runOptions);
  std::optional<runner::ProgressSink> progress;
  std::optional<runner::JsonResultSink> json;
  std::optional<runner::CsvResultSink> rawCsv;
  if (options.progress) {
    progress.emplace();
    sweepRunner.addSink(&*progress);
  }
  if (!options.jsonPath.empty()) {
    json.emplace(options.jsonPath);
    sweepRunner.addSink(&*json);
  }
  if (!options.rawCsvPath.empty()) {
    rawCsv.emplace(options.rawCsvPath);
    sweepRunner.addSink(&*rawCsv);
  }
  return sweepRunner.run();
}

double metricOf(const core::SimResult& result, Metric metric) {
  switch (metric) {
    case Metric::Qos: return result.qos;
    case Metric::Utilization: return result.utilization;
    case Metric::LostWork: return result.lostWork;
  }
  return 0.0;
}

const char* metricName(Metric metric) {
  switch (metric) {
    case Metric::Qos: return "QoS";
    case Metric::Utilization: return "Avg Utilization";
    case Metric::LostWork: return "Total Work Lost (node-s)";
  }
  return "?";
}

namespace {
const core::SweepPoint& findPoint(const std::vector<core::SweepPoint>& points,
                                  double accuracy, double userRisk) {
  for (const auto& point : points) {
    if (point.accuracy == accuracy && point.userRisk == userRisk) {
      return point;
    }
  }
  throw LogicError("sweep point not found");
}

std::string formatMetric(double value, Metric metric) {
  return metric == Metric::LostWork ? formatFixed(value, 0)
                                    : formatFixed(value, 4);
}

/// Single replica: the plain value. Replicated: "mean+-ci95".
std::string formatReplicated(const runner::PointResult& point, Metric metric) {
  if (point.reps.size() == 1) {
    return formatMetric(metricOf(point.primary(), metric), metric);
  }
  const auto stats = point.stats(
      [metric](const core::SimResult& r) { return metricOf(r, metric); });
  return formatMetric(stats.mean, metric) + "+-" +
         formatMetric(stats.ci95, metric);
}
}  // namespace

Table accuracySweepTable(const std::vector<core::SweepPoint>& points,
                         const std::vector<double>& accuracies,
                         const std::vector<double>& userRisks, Metric metric) {
  std::vector<std::string> header{"Accuracy (a)"};
  for (const double u : userRisks) {
    header.push_back("U=" + formatFixed(u, 1));
  }
  Table table(std::move(header));
  for (const double a : accuracies) {
    std::vector<std::string> row{formatFixed(a, 1)};
    for (const double u : userRisks) {
      row.push_back(formatMetric(metricOf(findPoint(points, a, u).result,
                                          metric),
                                 metric));
    }
    table.addRow(std::move(row));
  }
  return table;
}

Table userSweepTable(const std::vector<core::SweepPoint>& points,
                     const std::vector<double>& userRisks, Metric metric,
                     const std::string& seriesName) {
  Table table({"User Parameter (U)", seriesName});
  require(!points.empty(), "userSweepTable: empty sweep");
  for (const double u : userRisks) {
    const auto& point = findPoint(points, points.front().accuracy, u);
    table.addRow({formatFixed(u, 1), formatMetric(metricOf(point.result, metric),
                                                  metric)});
  }
  return table;
}

Table accuracySweepTable(const runner::SweepResult& sweep, Metric metric) {
  std::vector<std::string> header{"Accuracy (a)"};
  for (const double u : sweep.spec.userRisks) {
    header.push_back("U=" + formatFixed(u, 1));
  }
  Table table(std::move(header));
  for (const double a : sweep.spec.accuracies) {
    std::vector<std::string> row{formatFixed(a, 1)};
    for (const double u : sweep.spec.userRisks) {
      row.push_back(formatReplicated(sweep.at(a, u), metric));
    }
    table.addRow(std::move(row));
  }
  return table;
}

Table userSweepTable(const runner::SweepResult& sweep, Metric metric,
                     const std::string& seriesName) {
  Table table({"User Parameter (U)", seriesName});
  require(!sweep.spec.accuracies.empty(), "userSweepTable: empty sweep");
  const double accuracy = sweep.spec.accuracies.front();
  for (const double u : sweep.spec.userRisks) {
    table.addRow({formatFixed(u, 1),
                  formatReplicated(sweep.at(accuracy, u), metric)});
  }
  return table;
}

int runAccuracyFigure(int argc, const char* const* argv,
                      const std::string& figure, const std::string& model,
                      Metric metric) {
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    figure + ": " + metricName(metric) +
                        " vs prediction accuracy, " + model +
                        " log, flat cluster, U = 0.1, 0.5, 0.9",
                    options)) {
    return 0;
  }
  const std::string title = figure + ". " + metricName(metric) +
                            " vs. prediction accuracy, " + model +
                            " log, flat cluster.";
  try {
    const auto sweep =
        runHarnessSweep(options, model, core::canonicalGrid(),
                        {0.1, 0.5, 0.9}, title);
    const auto table = accuracySweepTable(sweep, metric);
    return emit(table, options, title, sweep) ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

int runUserFigure(int argc, const char* const* argv, const std::string& figure,
                  const std::string& model, Metric metric, double accuracy) {
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    figure + ": " + metricName(metric) +
                        " vs user behavior (U), " + model + " log, a = " +
                        formatFixed(accuracy, 1),
                    options)) {
    return 0;
  }
  const std::string title = figure + ". " + metricName(metric) +
                            " vs. user behavior, " + model +
                            " log, flat cluster, a = " +
                            formatFixed(accuracy, 1) + ".";
  try {
    const auto sweep = runHarnessSweep(options, model, {accuracy},
                                       core::canonicalGrid(), title);
    const auto table = userSweepTable(sweep, metric,
                                      metricName(metric) + std::string(" (") +
                                          model + ")");
    return emit(table, options, title, sweep) ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

}  // namespace pqos::bench
