#include "harness.hpp"

#include <iostream>

#include "util/strings.hpp"

namespace pqos::bench {

bool parseHarness(int argc, const char* const* argv,
                  const std::string& description, HarnessOptions& options) {
  ArgParser args(description);
  args.addInt("jobs", static_cast<long long>(options.jobs),
              "jobs to replay (paper: 10000)");
  args.addInt("seed", static_cast<long long>(options.seed),
              "seed for the synthetic workload and failure trace");
  args.addString("csv", "", "optional path for CSV export of the table");
  args.addInt("machine", options.machineSize,
              "cluster size in nodes (paper: 128)");
  if (!args.parse(argc, argv)) return false;
  options.jobs = static_cast<std::size_t>(args.getInt("jobs"));
  options.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  options.csvPath = args.getString("csv");
  options.machineSize = static_cast<int>(args.getInt("machine"));
  return true;
}

void emit(const Table& table, const HarnessOptions& options,
          const std::string& title) {
  std::cout << title << "\n(jobs=" << options.jobs
            << ", seed=" << options.seed
            << ", machine=" << options.machineSize << ")\n\n";
  table.print(std::cout);
  if (!options.csvPath.empty()) {
    table.writeCsvFile(options.csvPath);
    std::cout << "\nCSV written to " << options.csvPath << '\n';
  }
  std::cout << std::endl;
}

double metricOf(const core::SimResult& result, Metric metric) {
  switch (metric) {
    case Metric::Qos: return result.qos;
    case Metric::Utilization: return result.utilization;
    case Metric::LostWork: return result.lostWork;
  }
  return 0.0;
}

const char* metricName(Metric metric) {
  switch (metric) {
    case Metric::Qos: return "QoS";
    case Metric::Utilization: return "Avg Utilization";
    case Metric::LostWork: return "Total Work Lost (node-s)";
  }
  return "?";
}

namespace {
const core::SweepPoint& findPoint(const std::vector<core::SweepPoint>& points,
                                  double accuracy, double userRisk) {
  for (const auto& point : points) {
    if (point.accuracy == accuracy && point.userRisk == userRisk) {
      return point;
    }
  }
  throw LogicError("sweep point not found");
}

std::string formatMetric(double value, Metric metric) {
  return metric == Metric::LostWork ? formatFixed(value, 0)
                                    : formatFixed(value, 4);
}
}  // namespace

Table accuracySweepTable(const std::vector<core::SweepPoint>& points,
                         const std::vector<double>& accuracies,
                         const std::vector<double>& userRisks, Metric metric) {
  std::vector<std::string> header{"Accuracy (a)"};
  for (const double u : userRisks) {
    header.push_back("U=" + formatFixed(u, 1));
  }
  Table table(std::move(header));
  for (const double a : accuracies) {
    std::vector<std::string> row{formatFixed(a, 1)};
    for (const double u : userRisks) {
      row.push_back(formatMetric(metricOf(findPoint(points, a, u).result,
                                          metric),
                                 metric));
    }
    table.addRow(std::move(row));
  }
  return table;
}

Table userSweepTable(const std::vector<core::SweepPoint>& points,
                     const std::vector<double>& userRisks, Metric metric,
                     const std::string& seriesName) {
  Table table({"User Parameter (U)", seriesName});
  require(!points.empty(), "userSweepTable: empty sweep");
  for (const double u : userRisks) {
    const auto& point = findPoint(points, points.front().accuracy, u);
    table.addRow({formatFixed(u, 1), formatMetric(metricOf(point.result, metric),
                                                  metric)});
  }
  return table;
}

int runAccuracyFigure(int argc, const char* const* argv,
                      const std::string& figure, const std::string& model,
                      Metric metric) {
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    figure + ": " + metricName(metric) +
                        " vs prediction accuracy, " + model +
                        " log, flat cluster, U = 0.1, 0.5, 0.9",
                    options)) {
    return 0;
  }
  const auto inputs =
      core::makeStandardInputs(model, options.jobs, options.seed,
                               options.machineSize);
  core::SimConfig base;
  base.machineSize = options.machineSize;
  const auto accuracies = core::canonicalGrid();
  const std::vector<double> risks{0.1, 0.5, 0.9};
  const auto points = core::sweep(base, inputs, accuracies, risks);
  const auto table = accuracySweepTable(points, accuracies, risks, metric);
  emit(table, options,
       figure + ". " + metricName(metric) + " vs. prediction accuracy, " +
           model + " log, flat cluster.");
  return 0;
}

int runUserFigure(int argc, const char* const* argv, const std::string& figure,
                  const std::string& model, Metric metric, double accuracy) {
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    figure + ": " + metricName(metric) +
                        " vs user behavior (U), " + model + " log, a = " +
                        formatFixed(accuracy, 1),
                    options)) {
    return 0;
  }
  const auto inputs =
      core::makeStandardInputs(model, options.jobs, options.seed,
                               options.machineSize);
  core::SimConfig base;
  base.machineSize = options.machineSize;
  const std::vector<double> accuracies{accuracy};
  const auto risks = core::canonicalGrid();
  const auto points = core::sweep(base, inputs, accuracies, risks);
  const auto table =
      userSweepTable(points, risks, metric,
                     metricName(metric) + std::string(" (") + model + ")");
  emit(table, options,
       figure + ". " + metricName(metric) + " vs. user behavior, " + model +
           " log, flat cluster, a = " + formatFixed(accuracy, 1) + ".");
  return 0;
}

}  // namespace pqos::bench
