// Ablation A8 — forecast-horizon decay. The paper models constant
// prediction accuracy while acknowledging that "in practice, predictions
// are less accurate as they stretch further into the future". This bench
// gives the predictor a finite decay constant tau (effective accuracy
// a * exp(-h / tau) for an event h seconds ahead) and shows how the QoS
// gains erode as forecasts rot faster — the negotiation can no longer buy
// confidence with far-future deadlines.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A8: forecast-horizon decay tau (infinite = "
                    "paper), SDSC, a = 0.9, U = 0.9",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  struct Tau {
    const char* label;
    Duration value;
  };
  const Tau taus[] = {
      {"infinite (paper)", kTimeInfinity},
      {"1 week", kWeek},
      {"1 day", kDay},
      {"6 hours", 6.0 * kHour},
      {"1 hour", kHour},
  };
  Table table({"decay tau", "QoS", "utilization", "lost work (node-s)",
               "restarts", "mean promise"});
  for (const auto& tau : taus) {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.accuracy = 0.9;
    config.userRisk = 0.9;
    config.predictionHorizonDecay = tau.value;
    const auto result = core::runSimulation(config, inputs.jobs, inputs.trace);
    table.addRow({tau.label, formatFixed(result.qos, 4),
                  formatFixed(result.utilization, 4),
                  formatFixed(result.lostWork, 0),
                  std::to_string(result.totalRestarts),
                  formatFixed(result.meanPromisedSuccess, 4)});
  }
  return emit(table, options,
              "Ablation A8. Forecast-horizon decay (paper future work; "
              "infinite tau reproduces the paper's constant accuracy).")
             ? 0
             : 1;
}
