// Ablation A9 — interconnect topology. Every figure in the paper uses a
// flat (all-to-all) cluster. The ring topology forces partitions to be
// contiguous node intervals (a BG/L-flavoured constraint), introducing
// the fragmentation the paper discusses in §5.1 — "while generally
// considered bad for performance, fragmentation can benefit reliability;
// with event prediction, fragmentation means more opportunities to avoid
// failures". Measured here on both logs (the odd-sized SDSC jobs fragment
// a ring much more than NASA's power-of-two jobs).
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A9: flat vs contiguous-ring topology, "
                    "U = 0.9, a in {0, 0.9}",
                    options)) {
    return 0;
  }
  Table table({"log", "topology", "a", "QoS", "utilization",
               "lost work (node-s)", "mean wait (s)"});
  for (const std::string model : {"nasa", "sdsc"}) {
    const auto inputs = core::makeStandardInputs(model, options.jobs,
                                                 options.seed,
                                                 options.machineSize);
    for (const std::string topology : {"flat", "ring"}) {
      for (const double a : {0.0, 0.9}) {
        core::SimConfig config;
        config.machineSize = options.machineSize;
        config.topology = topology;
        config.accuracy = a;
        config.userRisk = 0.9;
        const auto result =
            core::runSimulation(config, inputs.jobs, inputs.trace);
        table.addRow({model, topology, formatFixed(a, 1),
                      formatFixed(result.qos, 4),
                      formatFixed(result.utilization, 4),
                      formatFixed(result.lostWork, 0),
                      formatFixed(result.meanWaitTime, 0)});
      }
    }
  }
  return emit(table, options,
              "Ablation A9. Flat vs contiguous-ring topology (fragmentation "
              "effects, paper Section 5.1).")
             ? 0
             : 1;
}
