// Reproduces the paper's Figure 12: lost-work vs. user behavior (U)
// on the nasa log (flat cluster, a = 1).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runUserFigure(argc, argv, "Figure 12", "nasa",
                                    pqos::bench::Metric::LostWork, 1.0);
}
