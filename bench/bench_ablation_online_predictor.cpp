// Ablation A6 — online statistical prediction vs the paper's idealized
// trace-replay oracle. The online predictor sees only failures that have
// already happened (per-node EWMA hazard + post-failure sickness boost,
// exploiting burstiness), so it produces false positives and false
// negatives; the oracle at matched nominal accuracy is its upper bound.
#include "core/simulator.hpp"
#include "harness.hpp"
#include "predict/statistical_predictor.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A6: online statistical predictor vs the "
                    "trace-replay oracle (SDSC, U = 0.9)",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  Table table({"predictor", "QoS", "utilization", "lost work (node-s)",
               "restarts", "mean promise"});

  const auto addRow = [&](const std::string& name,
                          const core::SimResult& result) {
    table.addRow({name, formatFixed(result.qos, 4),
                  formatFixed(result.utilization, 4),
                  formatFixed(result.lostWork, 0),
                  std::to_string(result.totalRestarts),
                  formatFixed(result.meanPromisedSuccess, 4)});
  };

  for (const double a : {0.0, 0.5, 0.9}) {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.accuracy = a;
    config.userRisk = 0.9;
    addRow("oracle a=" + formatFixed(a, 1),
           core::runSimulation(config, inputs.jobs, inputs.trace));
  }
  {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.userRisk = 0.9;
    predict::StatisticalPredictor online(options.machineSize);
    core::Simulator sim(config, inputs.jobs, inputs.trace, &online);
    addRow("online (EWMA hazard)", sim.run());
  }
  return emit(table, options,
              "Ablation A6. Online learned prediction vs trace-replay oracle "
              "(SDSC, U = 0.9).")
             ? 0
             : 1;
}
