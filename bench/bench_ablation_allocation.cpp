// Ablation A3 — node-selection policy: the paper's fault-aware tie-break
// (lowest predicted risk) against fault-oblivious first-fit and random
// selection, at several accuracies. Fault-aware selection should matter
// more as the predictor improves and not at all at a = 0.
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A3: allocation policies (lowest-risk | "
                    "first-fit | random) across accuracies, SDSC",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  Table table({"allocation", "a", "QoS", "utilization",
               "lost work (node-s)", "restarts"});
  for (const std::string allocation : {"lowest-risk", "first-fit", "random"}) {
    for (const double a : {0.0, 0.5, 1.0}) {
      core::SimConfig config;
      config.machineSize = options.machineSize;
      config.allocation = allocation;
      config.accuracy = a;
      config.userRisk = 0.5;
      const auto result =
          core::runSimulation(config, inputs.jobs, inputs.trace);
      table.addRow({allocation, formatFixed(a, 1),
                    formatFixed(result.qos, 4),
                    formatFixed(result.utilization, 4),
                    formatFixed(result.lostWork, 0),
                    std::to_string(result.totalRestarts)});
    }
  }
  return emit(table, options,
              "Ablation A3. Allocation policy comparison (SDSC).")
             ? 0
             : 1;
}
