// Reproduces the paper's Figure 4: utilization vs. prediction accuracy
// on the nasa log (flat cluster, U = 0.1, 0.5, 0.9).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runAccuracyFigure(argc, argv, "Figure 4", "nasa",
                                        pqos::bench::Metric::Utilization);
}
