// Reproduces the paper's Figure 6: lost-work vs. prediction accuracy
// on the nasa log (flat cluster, U = 0.1, 0.5, 0.9).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runAccuracyFigure(argc, argv, "Figure 6", "nasa",
                                        pqos::bench::Metric::LostWork);
}
