// Reproduces the paper's Figure 11: lost-work vs. user behavior (U)
// on the sdsc log (flat cluster, a = 1).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runUserFigure(argc, argv, "Figure 11", "sdsc",
                                    pqos::bench::Metric::LostWork, 1.0);
}
