// Ablation A11 — scheduler semantics: the paper's reservation-retaining
// scheduler (quotes are commitments) vs classic EASY backfilling (quotes
// are optimistic estimates). Same workload, failures, negotiation, and
// checkpointing; only the scheduling layer differs. EASY tends to win on
// wait time but breaks promises through estimate drift even without
// failures — evidence for why the paper fixes partitions at negotiation
// time.
#include "core/easy_simulator.hpp"
#include "core/simulator.hpp"
#include "harness.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pqos;
  using namespace pqos::bench;
  HarnessOptions options;
  if (!parseHarness(argc, argv,
                    "Ablation A11: reservation-retaining scheduler (paper) "
                    "vs classic EASY backfilling, SDSC, U = 0.9",
                    options)) {
    return 0;
  }
  const auto inputs = core::makeStandardInputs("sdsc", options.jobs,
                                               options.seed,
                                               options.machineSize);
  Table table({"scheduler", "a", "QoS", "deadline-met rate", "utilization",
               "mean wait (s)", "lost work (node-s)"});
  const auto addRow = [&](const std::string& name, double a,
                          const core::SimResult& result) {
    table.addRow({name, formatFixed(a, 1), formatFixed(result.qos, 4),
                  formatFixed(result.deadlineRate(), 4),
                  formatFixed(result.utilization, 4),
                  formatFixed(result.meanWaitTime, 0),
                  formatFixed(result.lostWork, 0)});
  };
  for (const double a : {0.0, 0.9}) {
    core::SimConfig config;
    config.machineSize = options.machineSize;
    config.accuracy = a;
    config.userRisk = 0.9;
    core::Simulator reservation(config, inputs.jobs, inputs.trace);
    addRow("reservation (paper)", a, reservation.run());
    core::EasySimulator easy(config, inputs.jobs, inputs.trace);
    addRow("EASY backfilling", a, easy.run());
  }
  return emit(table, options,
              "Ablation A11. Scheduler semantics: commitments vs estimates "
              "(SDSC, U = 0.9).")
             ? 0
             : 1;
}
