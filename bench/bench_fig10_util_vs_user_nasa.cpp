// Reproduces the paper's Figure 10: utilization vs. user behavior (U)
// on the nasa log (flat cluster, a = 1).
#include "harness.hpp"

int main(int argc, char** argv) {
  return pqos::bench::runUserFigure(argc, argv, "Figure 10", "nasa",
                                    pqos::bench::Metric::Utilization, 1.0);
}
